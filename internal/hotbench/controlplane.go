package hotbench

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/cluster"
	"repro/internal/nnapi"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// Control-plane benchmark geometry. The workload is fixed so recorded
// runs stay comparable across changes: a namenode serving an established
// namespace of CtrlPrefillFiles completed files while CtrlWriters
// concurrent writers each run CtrlFilesPerOp full write lifecycles of
// CtrlBlocksPerFile blocks — create, then per block a client heartbeat
// followed by addBlock (the SMARTH cadence), then the datanode-side
// finalized-replica reports, complete, and delete. Only control-plane
// RPCs flow; no block data moves, so the namenode is the only
// bottleneck.
const (
	// CtrlWriters is the concurrent-writer count (the ROADMAP's
	// control-plane scale target measures at 64).
	CtrlWriters = 64
	// CtrlBlocksPerFile is how many addBlock rounds each file takes.
	CtrlBlocksPerFile = 8
	// CtrlFilesPerOp is how many files each writer writes per benchmark
	// iteration.
	CtrlFilesPerOp = 4
	// CtrlPrefillFiles is the size of the pre-existing namespace: lease
	// renewal and maintenance scans must not degrade with it.
	CtrlPrefillFiles = 16384
	// ctrlBlockBytes is the pretended size of every reported block.
	ctrlBlockBytes = 1 << 20
)

// ctrlLatencies collects addBlock latencies across writers.
type ctrlLatencies struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (l *ctrlLatencies) add(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, d)
	l.mu.Unlock()
}

// quantile returns the q-quantile (0..1) of the collected samples.
func (l *ctrlLatencies) quantile(q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
	i := int(q * float64(len(l.samples)-1))
	return l.samples[i]
}

// ctrlSpeeds is the speed table every bench writer heartbeats: a spread
// so SMARTH placement has real TopN choices.
func ctrlSpeeds(numDN int) map[string]float64 {
	m := make(map[string]float64, numDN)
	for i := 0; i < numDN; i++ {
		m[cluster.DatanodeName(i)] = float64(40 + 15*i)
	}
	return m
}

// ctrlPrefill populates the namespace with n completed single-block
// files through direct namenode calls (no RPC), so the benchmark starts
// against an established namespace rather than an empty one.
func ctrlPrefill(b *testing.B, c *cluster.Cluster, n int) {
	b.Helper()
	nn := c.NN
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/prefill/d%03d/f%d", i%512, i)
		if _, err := nn.Create(nnapi.CreateReq{Path: path, Client: "prefill", Replication: 1, BlockSize: ctrlBlockBytes}); err != nil {
			b.Fatal(err)
		}
		resp, err := nn.AddBlock(nnapi.AddBlockReq{Path: path, Client: "prefill"})
		if err != nil {
			b.Fatal(err)
		}
		blk := resp.Located.Block
		blk.NumBytes = ctrlBlockBytes
		if _, err := nn.BlockReceived(nnapi.BlockReceivedReq{Name: resp.Located.Targets[0].Name, Block: blk}); err != nil {
			b.Fatal(err)
		}
		if _, err := nn.Complete(nnapi.CompleteReq{Path: path, Client: "prefill"}); err != nil {
			b.Fatal(err)
		}
	}
}

// ControlPlane measures namenode control-plane throughput: CtrlWriters
// concurrent writers run full metadata-only write lifecycles against a
// CtrlPrefillFiles-file namespace. batch selects the transport shape:
// false issues one RPC per logical operation (the pre-batching wire
// protocol); true rides the heartbeat+addBlock pair in one batched
// frame and aggregates the per-block replica reports into a single
// delta report, which is what the real client and datanode do.
//
// Reported metrics: "rpcs/s" is logical control-plane operations served
// per second (a batched frame carrying two operations counts two — the
// measure is namenode metadata throughput, not frame count),
// "addblock-p50-ns"/"addblock-p99-ns" are client-observed addBlock
// latencies, batching included.
func ControlPlane(b *testing.B, batch bool) {
	c, err := cluster.Start(cluster.Config{NumDatanodes: 9, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	ctrlPrefill(b, c, CtrlPrefillFiles)

	speeds := ctrlSpeeds(9)
	lat := &ctrlLatencies{}
	var totalOps int64
	var opsMu sync.Mutex

	runWriter := func(w, iter int) (ops int64, err error) {
		name := fmt.Sprintf("ctrl-w%d", w)
		conn, err := c.EffNet.Dial(name, cluster.NamenodeAddr)
		if err != nil {
			return 0, err
		}
		cl := rpc.NewClient(conn)
		defer cl.Close()
		dn := cluster.DatanodeName(w % 9)
		for f := 0; f < CtrlFilesPerOp; f++ {
			path := fmt.Sprintf("/ctrl/w%d/i%d-f%d", w, iter, f)
			if err := cl.Call(nnapi.MethodCreate, nnapi.CreateReq{
				Path: path, Client: name, Replication: 3, BlockSize: ctrlBlockBytes,
			}, &nnapi.CreateResp{}); err != nil {
				return ops, fmt.Errorf("create %s: %w", path, err)
			}
			ops++
			var prev block.Block
			blocks := make([]block.Block, 0, CtrlBlocksPerFile)
			for blkIdx := 0; blkIdx < CtrlBlocksPerFile; blkIdx++ {
				hb := nnapi.ClientHeartbeatReq{Client: name, Speeds: speeds}
				ab := nnapi.AddBlockReq{Path: path, Client: name, Mode: proto.ModeSmarth, Previous: prev}
				var abResp nnapi.AddBlockResp
				start := time.Now()
				if batch {
					// The batched client's wire shape: heartbeat and addBlock
					// ride one frame, order preserved by the server.
					hbBody, err := json.Marshal(hb)
					if err != nil {
						return ops, err
					}
					abBody, err := json.Marshal(ab)
					if err != nil {
						return ops, err
					}
					var bresp nnapi.BatchResp
					if err := cl.Call(nnapi.MethodBatch, nnapi.BatchReq{Entries: []nnapi.BatchEntry{
						{Method: nnapi.MethodClientHeartbeat, Body: hbBody},
						{Method: nnapi.MethodAddBlock, Body: abBody},
					}}, &bresp); err != nil {
						return ops, fmt.Errorf("batch hb+addBlock %s: %w", path, err)
					}
					if len(bresp.Results) != 2 {
						return ops, fmt.Errorf("batch: %d results, want 2", len(bresp.Results))
					}
					for _, r := range bresp.Results {
						if r.Err != "" {
							return ops, fmt.Errorf("batch entry %s: %s", path, r.Err)
						}
					}
					if err := json.Unmarshal(bresp.Results[1].Body, &abResp); err != nil {
						return ops, fmt.Errorf("batch addBlock decode: %w", err)
					}
				} else {
					if err := cl.Call(nnapi.MethodClientHeartbeat, hb, &nnapi.ClientHeartbeatResp{}); err != nil {
						return ops, fmt.Errorf("heartbeat: %w", err)
					}
					if err := cl.Call(nnapi.MethodAddBlock, ab, &abResp); err != nil {
						return ops, fmt.Errorf("addBlock %s: %w", path, err)
					}
				}
				lat.add(time.Since(start))
				ops += 2
				prev = abResp.Located.Block
				got := abResp.Located.Block
				got.NumBytes = ctrlBlockBytes
				blocks = append(blocks, got)
			}
			// The finalized-replica reports: a single delta report in
			// batched mode, one RPC per block otherwise.
			if batch {
				var brResp nnapi.BlockReceivedBatchResp
				if err := cl.Call(nnapi.MethodBlockReceivedBatch, nnapi.BlockReceivedBatchReq{Name: dn, Blocks: blocks}, &brResp); err != nil {
					return ops, fmt.Errorf("blockReceivedBatch: %w", err)
				}
				if brResp.Rejected > 0 {
					return ops, fmt.Errorf("blockReceivedBatch: %d rejected", brResp.Rejected)
				}
				ops += int64(len(blocks))
			} else {
				for _, blk := range blocks {
					if err := cl.Call(nnapi.MethodBlockReceived, nnapi.BlockReceivedReq{Name: dn, Block: blk}, &nnapi.BlockReceivedResp{}); err != nil {
						return ops, fmt.Errorf("blockReceived: %w", err)
					}
					ops++
				}
			}
			var comp nnapi.CompleteResp
			for !comp.Done {
				if err := cl.Call(nnapi.MethodComplete, nnapi.CompleteReq{Path: path, Client: name}, &comp); err != nil {
					return ops, fmt.Errorf("complete: %w", err)
				}
				ops++
			}
			if err := cl.Call(nnapi.MethodDelete, nnapi.DeleteReq{Path: path}, &nnapi.DeleteResp{}); err != nil {
				return ops, fmt.Errorf("delete: %w", err)
			}
			ops++
		}
		return ops, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, CtrlWriters)
		for w := 0; w < CtrlWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ops, err := runWriter(w, i)
				opsMu.Lock()
				totalOps += ops
				opsMu.Unlock()
				if err != nil {
					errs <- err
				}
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errs:
			b.Fatal(err)
		default:
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(totalOps)/elapsed.Seconds(), "rpcs/s")
	}
	b.ReportMetric(float64(lat.quantile(0.50).Nanoseconds()), "addblock-p50-ns")
	b.ReportMetric(float64(lat.quantile(0.99).Nanoseconds()), "addblock-p99-ns")
}
