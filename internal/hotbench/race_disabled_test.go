//go:build !race

package hotbench

const raceEnabled = false
