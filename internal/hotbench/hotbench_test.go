package hotbench

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/checksum"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/proto"
)

// The HotPath benchmark family: run with
//
//	go test -run=NONE -bench=HotPath -benchmem ./internal/hotbench/
//
// or `make bench-hotpath`, which records the results in
// BENCH_hotpath.json.

func BenchmarkHotPathPacketRoundTrip(b *testing.B) { PacketRoundTrip(b) }

func BenchmarkHotPathPacketRoundTripObs(b *testing.B) { PacketRoundTripObs(b) }

func BenchmarkHotPathAckRoundTrip(b *testing.B) { AckRoundTrip(b) }

func BenchmarkHotPathLiveWrite64MB(b *testing.B) {
	for _, mode := range []proto.WriteMode{proto.ModeSmarth, proto.ModeHDFS} {
		b.Run(mode.String(), func(b *testing.B) {
			LiveWrite(b, mode, 64<<20)
		})
	}
}

func BenchmarkHotPathLiveRead64MB(b *testing.B) {
	b.Run(proto.ModeSmarth.String(), func(b *testing.B) {
		LiveRead(b, client.ReadOptions{}, 64<<20)
	})
	b.Run(proto.ModeHDFS.String(), func(b *testing.B) {
		LiveRead(b, client.ReadOptions{DisablePrefetch: true, HedgeAfter: -1}, 64<<20)
	})
}

func BenchmarkHotPathRawCopy64MBTCP(b *testing.B) { RawCopyTCP(b, 64<<20) }

func BenchmarkHotPathLiveWrite64MBTCP(b *testing.B) {
	b.Run("SMARTH-R1", func(b *testing.B) { LiveWriteTCP(b, proto.ModeSmarth, 64<<20, 1, 1) })
	b.Run("SMARTH-R1-S4", func(b *testing.B) { LiveWriteTCP(b, proto.ModeSmarth, 64<<20, 1, 4) })
	b.Run("SMARTH-R3", func(b *testing.B) { LiveWriteTCP(b, proto.ModeSmarth, 64<<20, 3, 1) })
	b.Run("HDFS-R3", func(b *testing.B) { LiveWriteTCP(b, proto.ModeHDFS, 64<<20, 3, 1) })
}

func BenchmarkHotPathLiveRead64MBTCP(b *testing.B) {
	b.Run("SMARTH", func(b *testing.B) { LiveReadTCP(b, client.ReadOptions{}, 64<<20) })
}

func BenchmarkHotPathCtrlPlane64W(b *testing.B) {
	b.Run("batch", func(b *testing.B) { ControlPlane(b, true) })
	b.Run("nobatch", func(b *testing.B) { ControlPlane(b, false) })
}

func BenchmarkHotPathLiveWrite64MBObs(b *testing.B) {
	for _, mode := range []proto.WriteMode{proto.ModeSmarth, proto.ModeHDFS} {
		b.Run(mode.String(), func(b *testing.B) {
			LiveWriteObs(b, mode, 64<<20, obs.New(nil))
		})
	}
}

// TestInstrumentedCodecZeroAlloc proves the PR 2 zero-allocation
// guarantee survives the observability layer: one packet round trip with
// ConnMetrics attached and a span recording sampled packet events must
// not allocate at steady state. (The sampled event append amortizes to
// ~0 through slice growth doubling; the tolerance covers it.)
func TestInstrumentedCodecZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race (sync.Pool drops puts)")
	}
	o := obs.New(nil)
	data := make([]byte, proto.DefaultPacketSize)
	var sums []uint32
	var buf bytes.Buffer
	c := proto.NewConn(&buf)
	c.SetMetrics(obs.NewConnMetrics(o.Component("hotbench")))
	span := o.StartSpan("pipeline", nil)
	defer span.End()

	var seq int64
	roundTrip := func() {
		sums = checksum.AppendSums(sums[:0], data, checksum.DefaultChunkSize)
		pkt := proto.Packet{Seqno: seq, Sums: sums, Data: data}
		if err := c.WritePacket(&pkt); err != nil {
			t.Fatal(err)
		}
		span.Packet("send", seq)
		out, err := c.ReadPacket()
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
		seq++
	}
	for i := 0; i < 200; i++ { // warm the pools and the event buffer
		roundTrip()
	}
	avg := testing.AllocsPerRun(200, roundTrip)
	if avg > 0.05 {
		t.Fatalf("instrumented packet round trip allocates %.2f times per packet, want ~0", avg)
	}
}

// benchBaseline reads a benchmark's "current" record from the repo's
// BENCH_hotpath.json trajectory file.
func benchBaseline(t *testing.T, name string) int64 {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_hotpath.json")
	if err != nil {
		t.Skipf("no BENCH_hotpath.json baseline: %v", err)
	}
	var doc struct {
		Current []struct {
			Name   string `json:"name"`
			BPerOp int64  `json:"b_per_op"`
		} `json:"current"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse BENCH_hotpath.json: %v", err)
	}
	for _, e := range doc.Current {
		if e.Name == name {
			return e.BPerOp
		}
	}
	t.Skipf("no %q entry in BENCH_hotpath.json", name)
	return 0
}

// TestLiveWriteObsAllocBudget uploads 64 MB under SMARTH with full
// observability on and requires the allocated bytes per op to stay
// within 10% of the recorded uninstrumented baseline — the end-to-end
// proof that always-on metrics and tracing do not reintroduce per-packet
// garbage.
func TestLiveWriteObsAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not comparable under -race")
	}
	if testing.Short() {
		t.Skip("64 MB live upload; skipped in -short")
	}
	base := benchBaseline(t, "LiveWrite64MB/SMARTH")
	res := testing.Benchmark(func(b *testing.B) {
		LiveWriteObs(b, proto.ModeSmarth, 64<<20, obs.New(nil))
	})
	budget := base + base/10
	if got := res.AllocedBytesPerOp(); got > budget {
		t.Fatalf("instrumented live write allocates %d B/op, budget %d (baseline %d +10%%)", got, budget, base)
	}
	t.Logf("instrumented live write: %d B/op (baseline %d, budget %d)", res.AllocedBytesPerOp(), base, budget)
}
