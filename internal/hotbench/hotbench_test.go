package hotbench

import (
	"testing"

	"repro/internal/proto"
)

// The HotPath benchmark family: run with
//
//	go test -run=NONE -bench=HotPath -benchmem ./internal/hotbench/
//
// or `make bench-hotpath`, which records the results in
// BENCH_hotpath.json.

func BenchmarkHotPathPacketRoundTrip(b *testing.B) { PacketRoundTrip(b) }

func BenchmarkHotPathAckRoundTrip(b *testing.B) { AckRoundTrip(b) }

func BenchmarkHotPathLiveWrite64MB(b *testing.B) {
	for _, mode := range []proto.WriteMode{proto.ModeSmarth, proto.ModeHDFS} {
		b.Run(mode.String(), func(b *testing.B) {
			LiveWrite(b, mode, 64<<20)
		})
	}
}
