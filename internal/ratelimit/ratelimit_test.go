package ratelimit

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// fakeClock is a manually-advanced clock for deterministic limiter tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
	// slept accumulates requested sleep durations; Sleep advances time.
	slept time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(0, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Sleep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	f.slept += d
}

func (f *fakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	f.Sleep(d)
	ch <- f.Now()
	return ch
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func TestBurstAdmitsImmediately(t *testing.T) {
	fc := newFakeClock()
	l := New(fc, 1000, 500) // 1000 B/s, 500 B burst
	l.WaitN(500)
	if fc.slept != 0 {
		t.Fatalf("slept %v within burst, want 0", fc.slept)
	}
}

func TestRateEnforced(t *testing.T) {
	fc := newFakeClock()
	l := New(fc, 1000, 500)
	l.WaitN(500) // drain burst
	l.WaitN(1000)
	// 1000 bytes at 1000 B/s = 1 s wait.
	if fc.slept != time.Second {
		t.Fatalf("slept %v, want 1s", fc.slept)
	}
}

func TestRefill(t *testing.T) {
	fc := newFakeClock()
	l := New(fc, 1000, 1000)
	l.WaitN(1000) // drain
	fc.advance(time.Second)
	l.WaitN(1000) // fully refilled
	if fc.slept != 0 {
		t.Fatalf("slept %v after refill, want 0", fc.slept)
	}
}

func TestBurstCap(t *testing.T) {
	fc := newFakeClock()
	l := New(fc, 1000, 1000)
	fc.advance(time.Hour) // tokens must cap at burst, not accumulate
	l.WaitN(1000)
	l.WaitN(1000)
	if fc.slept != time.Second {
		t.Fatalf("slept %v, want 1s (burst capped)", fc.slept)
	}
}

func TestUnlimited(t *testing.T) {
	fc := newFakeClock()
	l := New(fc, Unlimited, 0)
	l.WaitN(1 << 30)
	if fc.slept != 0 {
		t.Fatalf("unlimited limiter slept %v", fc.slept)
	}
	var nilL *Limiter
	nilL.WaitN(1 << 30) // must not panic
	if nilL.Rate() != Unlimited {
		t.Fatal("nil limiter rate should be unlimited")
	}
}

func TestSetRate(t *testing.T) {
	fc := newFakeClock()
	l := New(fc, 1000, 100)
	if l.Rate() != 1000 {
		t.Fatalf("Rate = %v, want 1000", l.Rate())
	}
	l.WaitN(100) // drain burst
	l.SetRate(2000)
	l.WaitN(2000)
	if fc.slept != time.Second {
		t.Fatalf("slept %v after SetRate(2000), want 1s", fc.slept)
	}
}

func TestLongRunRate(t *testing.T) {
	fc := newFakeClock()
	l := New(fc, 10_000, 1000)
	start := fc.Now()
	const total = 100_000
	for sent := 0; sent < total; sent += 1000 {
		l.WaitN(1000)
	}
	elapsed := fc.Now().Sub(start).Seconds()
	rate := float64(total) / elapsed
	// One burst of slack is expected; the long-run rate must be within 5%.
	if rate < 9_500 || rate > 11_500 {
		t.Fatalf("long-run rate %.0f B/s, want ~10000", rate)
	}
}

func TestWriterEnforcesRate(t *testing.T) {
	fc := newFakeClock()
	l := New(fc, 1<<20, 64<<10) // 1 MiB/s, one-chunk burst
	var sink bytes.Buffer
	w := NewWriter(&sink, l)
	payload := make([]byte, 1<<20)
	n, err := w.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if sink.Len() != len(payload) {
		t.Fatalf("sink got %d bytes, want %d", sink.Len(), len(payload))
	}
	// 1 MiB at 1 MiB/s minus the 64 KiB burst ≈ 0.9375 s.
	if fc.slept < 900*time.Millisecond || fc.slept > time.Second {
		t.Fatalf("slept %v, want ≈0.94s", fc.slept)
	}
}

func TestReaderEnforcesRate(t *testing.T) {
	fc := newFakeClock()
	l := New(fc, 1<<20, 64<<10)
	src := bytes.NewReader(make([]byte, 512<<10))
	r := NewReader(src, l)
	n, err := io.Copy(io.Discard, r)
	if err != nil || n != 512<<10 {
		t.Fatalf("Copy = (%d, %v)", n, err)
	}
	if fc.slept < 400*time.Millisecond || fc.slept > 520*time.Millisecond {
		t.Fatalf("slept %v, want ≈0.44-0.5s", fc.slept)
	}
}

func TestStackedLimiters(t *testing.T) {
	fc := newFakeClock()
	nic := New(fc, 2000, 100)
	rack := New(fc, 1000, 100) // tighter: dominates
	var sink bytes.Buffer
	w := NewWriter(&sink, nic, rack)
	if _, err := w.Write(make([]byte, 2100)); err != nil {
		t.Fatal(err)
	}
	// The 1000 B/s limiter dominates: ~2s total.
	if fc.slept < 1900*time.Millisecond || fc.slept > 2200*time.Millisecond {
		t.Fatalf("slept %v, want ≈2s (bottleneck limiter)", fc.slept)
	}
}

func TestWriterShortWriteError(t *testing.T) {
	fc := newFakeClock()
	l := New(fc, Unlimited, 0)
	ew := &errWriter{limit: 10}
	w := NewWriter(ew, l)
	n, err := w.Write(make([]byte, 100))
	if err == nil {
		t.Fatal("expected error from underlying writer")
	}
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
}

type errWriter struct{ limit int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.limit == 0 {
		return 0, io.ErrShortWrite
	}
	n := len(p)
	if n > e.limit {
		n = e.limit
	}
	e.limit -= n
	return n, io.ErrShortWrite
}

func TestRealClockSmoke(t *testing.T) {
	// A tiny real-time check: 64 KiB at 1 MiB/s with 32 KiB burst should
	// take roughly 31 ms. Generous bounds avoid flakes.
	l := New(clock.System, 1<<20, 32<<10)
	start := time.Now()
	l.WaitN(64 << 10)
	elapsed := time.Since(start)
	if elapsed < 15*time.Millisecond || elapsed > 500*time.Millisecond {
		t.Fatalf("elapsed %v, want ≈31ms", elapsed)
	}
}
