// Package ratelimit provides a token-bucket byte-rate limiter and
// rate-limited reader/writer wrappers. In the real-cluster substrate it
// plays the role that the Linux `tc` utility plays in the paper's EC2
// experiments: shaping the ingress/egress bandwidth of a node or the
// bandwidth between racks.
package ratelimit

import (
	"io"
	"sync"
	"time"

	"repro/internal/clock"
)

// Unlimited disables limiting when passed as the rate.
const Unlimited = 0

// Limiter is a token-bucket limiter over bytes. The zero value is
// unlimited; construct with New for a working limiter.
type Limiter struct {
	mu     sync.Mutex
	clk    clock.Clock
	rate   float64 // bytes per second; <= 0 means unlimited
	burst  float64 // bucket capacity in bytes
	tokens float64
	last   time.Time
}

// New returns a limiter that admits rate bytes/second with the given
// burst capacity. A rate <= 0 means unlimited. A burst <= 0 defaults to
// one second's worth of tokens (or 64 KiB if that is larger).
func New(clk clock.Clock, bytesPerSecond float64, burst float64) *Limiter {
	if clk == nil {
		clk = clock.System
	}
	if burst <= 0 {
		burst = bytesPerSecond
		if burst < 64<<10 {
			burst = 64 << 10
		}
	}
	return &Limiter{
		clk:    clk,
		rate:   bytesPerSecond,
		burst:  burst,
		tokens: burst,
		last:   clk.Now(),
	}
}

// Rate returns the configured rate in bytes per second (0 = unlimited).
func (l *Limiter) Rate() float64 {
	if l == nil {
		return Unlimited
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// SetRate changes the rate at runtime (models re-running `tc`).
func (l *Limiter) SetRate(bytesPerSecond float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.advanceLocked()
	l.rate = bytesPerSecond
}

// advanceLocked refills tokens according to elapsed time.
func (l *Limiter) advanceLocked() {
	now := l.clk.Now()
	if l.rate > 0 {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
}

// reserveLocked debits n tokens and returns how long the caller must wait
// for the debit to be covered.
func (l *Limiter) reserveLocked(n int) time.Duration {
	l.advanceLocked()
	if l.rate <= 0 {
		return 0
	}
	l.tokens -= float64(n)
	if l.tokens >= 0 {
		return 0
	}
	return time.Duration(-l.tokens / l.rate * float64(time.Second))
}

// WaitN blocks until n bytes may pass. A nil limiter admits immediately.
// Requests larger than the burst are admitted in one reservation (the
// wait simply extends past one bucket's worth), which keeps large writes
// simple while preserving the long-run rate.
func (l *Limiter) WaitN(n int) {
	if l == nil || n <= 0 {
		return
	}
	l.mu.Lock()
	wait := l.reserveLocked(n)
	l.mu.Unlock()
	if wait > 0 {
		l.clk.Sleep(wait)
	}
}

// WaitAll reserves n bytes on every limiter simultaneously and sleeps for
// the longest of the required waits. Serial WaitN calls on stacked
// limiters would double-count delay (waiting on the first bucket does not
// admit bytes through the second any sooner); the constraints act in
// parallel, so the correct wait is the maximum. Nil limiters are skipped.
func WaitAll(n int, lims ...*Limiter) {
	if n <= 0 {
		return
	}
	var max time.Duration
	var clk clock.Clock
	for _, l := range lims {
		if l == nil {
			continue
		}
		l.mu.Lock()
		w := l.reserveLocked(n)
		l.mu.Unlock()
		if w > max {
			max = w
			clk = l.clk
		}
	}
	if max > 0 {
		clk.Sleep(max)
	}
}

// Reader wraps r so reads drain the limiter. Multiple limiters may be
// stacked (e.g. a NIC limit plus a cross-rack limit) by passing several.
type Reader struct {
	r    io.Reader
	lims []*Limiter
}

// NewReader returns a rate-limited reader. Nil limiters are ignored.
func NewReader(r io.Reader, lims ...*Limiter) *Reader {
	return &Reader{r: r, lims: lims}
}

func (r *Reader) Read(p []byte) (int, error) {
	// Limit the chunk so a huge read doesn't reserve minutes at once.
	if len(p) > 64<<10 {
		p = p[:64<<10]
	}
	n, err := r.r.Read(p)
	WaitAll(n, r.lims...)
	return n, err
}

// Writer wraps w so writes drain the limiter before hitting w.
type Writer struct {
	w    io.Writer
	lims []*Limiter
}

// NewWriter returns a rate-limited writer. Nil limiters are ignored.
func NewWriter(w io.Writer, lims ...*Limiter) *Writer {
	return &Writer{w: w, lims: lims}
}

// Limited reports whether any limiter is attached. An unlimited writer
// is a pass-through, which callers exploit to take gather-write fast
// paths that bypass the chunking loop.
func (w *Writer) Limited() bool {
	for _, l := range w.lims {
		if l != nil {
			return true
		}
	}
	return false
}

func (w *Writer) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		chunk := p[written:]
		if len(chunk) > 64<<10 {
			chunk = chunk[:64<<10]
		}
		WaitAll(len(chunk), w.lims...)
		n, err := w.w.Write(chunk)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
