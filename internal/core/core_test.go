package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestMaxPipelines(t *testing.T) {
	cases := []struct{ dn, repl, want int }{
		{9, 3, 3},
		{10, 3, 3},
		{9, 1, 9},
		{2, 3, 1}, // floor but never below 1
		{0, 3, 1},
		{9, 0, 9}, // degenerate replication treated as 1
	}
	for _, c := range cases {
		if got := MaxPipelines(c.dn, c.repl); got != c.want {
			t.Errorf("MaxPipelines(%d,%d) = %d, want %d", c.dn, c.repl, got, c.want)
		}
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.Record("dn1", 1_000_000, time.Second)
	if got := r.Speed("dn1"); math.Abs(got-1e6) > 1 {
		t.Fatalf("speed = %v, want 1e6", got)
	}
	if got := r.Speed("never"); got != 0 {
		t.Fatalf("unmeasured speed = %v, want 0", got)
	}
	// EWMA moves halfway toward the new measurement.
	r.Record("dn1", 3_000_000, time.Second)
	if got := r.Speed("dn1"); math.Abs(got-2e6) > 1 {
		t.Fatalf("ewma speed = %v, want 2e6", got)
	}
	// Garbage measurements are ignored.
	r.Record("dn1", 0, time.Second)
	r.Record("dn1", 100, 0)
	r.Record("dn1", -5, time.Second)
	if got := r.Speed("dn1"); math.Abs(got-2e6) > 1 {
		t.Fatalf("speed after garbage = %v, want unchanged 2e6", got)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRecorderSnapshotIsCopy(t *testing.T) {
	r := NewRecorder()
	r.Record("dn1", 100, time.Second)
	snap := r.Snapshot()
	snap["dn1"] = 999
	if r.Speed("dn1") == 999 {
		t.Fatal("snapshot mutation leaked into recorder")
	}
}

func TestRegistryUpdateAndTopN(t *testing.T) {
	g := NewRegistry()
	if g.HasRecords("c1") {
		t.Fatal("empty registry claims records")
	}
	g.Update("c1", map[string]float64{"dn1": 100, "dn2": 300, "dn3": 200})
	if !g.HasRecords("c1") {
		t.Fatal("registry lost records")
	}
	candidates := []string{"dn1", "dn2", "dn3", "dn4"}
	top := g.TopN("c1", 2, candidates)
	if len(top) != 2 || top[0] != "dn2" || top[1] != "dn3" {
		t.Fatalf("TopN = %v, want [dn2 dn3]", top)
	}
	// Unmeasured nodes rank last but remain eligible.
	all := g.TopN("c1", 10, candidates)
	if len(all) != 4 || all[3] != "dn4" {
		t.Fatalf("TopN(10) = %v, want dn4 last", all)
	}
	// Per-client isolation.
	if g.HasRecords("c2") {
		t.Fatal("records bled across clients")
	}
}

func TestRegistryMergeSemantics(t *testing.T) {
	g := NewRegistry()
	g.Update("c", map[string]float64{"dn1": 100, "dn2": 200})
	g.Update("c", map[string]float64{"dn1": 500}) // dn2 must survive
	speeds := g.Speeds("c")
	if speeds["dn1"] != 500 || speeds["dn2"] != 200 {
		t.Fatalf("speeds = %v", speeds)
	}
	g.Update("c", nil) // no-op
	if !g.HasRecords("c") {
		t.Fatal("nil update cleared records")
	}
}

func TestRegistryForget(t *testing.T) {
	g := NewRegistry()
	g.Update("c1", map[string]float64{"dn1": 1, "dn2": 2})
	g.Update("c2", map[string]float64{"dn1": 3})
	g.Forget("dn1")
	if s := g.Speeds("c1"); s["dn1"] != 0 || s["dn2"] != 2 {
		t.Fatalf("c1 speeds after Forget = %v", s)
	}
	if g.HasRecords("c2") {
		t.Fatal("c2 should have no records after its only datanode was forgotten")
	}
	g.ForgetClient("c1")
	if g.HasRecords("c1") {
		t.Fatal("ForgetClient left records")
	}
}

func TestTopNTieBreakDeterministic(t *testing.T) {
	g := NewRegistry()
	g.Update("c", map[string]float64{"dnB": 100, "dnA": 100, "dnC": 100})
	top := g.TopN("c", 3, []string{"dnC", "dnB", "dnA"})
	want := []string{"dnA", "dnB", "dnC"}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("tie break order = %v, want %v", top, want)
		}
	}
}

func TestTopNEdgeCases(t *testing.T) {
	g := NewRegistry()
	if got := g.TopN("c", 0, []string{"a"}); got != nil {
		t.Fatalf("TopN(0) = %v, want nil", got)
	}
	if got := g.TopN("c", 3, nil); got != nil {
		t.Fatalf("TopN(no candidates) = %v, want nil", got)
	}
}

func TestLocalOptimizeSortsBySpeed(t *testing.T) {
	speeds := map[string]float64{"a": 10, "b": 30, "c": 20}
	// Seed 1's first Float64 is ≈0.60 ≤ SwapThreshold, so no swap occurs
	// and the result must be the pure speed-descending sort.
	rng := rand.New(rand.NewSource(1))
	if probe := rand.New(rand.NewSource(1)); probe.Float64() > SwapThreshold {
		t.Fatal("test premise broken: seed 1 should not trigger a swap")
	}
	targets := []string{"a", "b", "c"}
	if swapped := LocalOptimize(targets, func(dn string) float64 { return speeds[dn] }, rng); swapped {
		t.Fatal("unexpected swap with seed 1")
	}
	want := []string{"b", "c", "a"}
	for i := range want {
		if targets[i] != want[i] {
			t.Fatalf("sorted order = %v, want %v", targets, want)
		}
	}
}

func TestLocalOptimizeSwapProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	speeds := func(string) float64 { return 0 }
	swaps := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		targets := []string{"a", "b", "c"}
		if LocalOptimize(targets, speeds, rng) {
			swaps++
			if targets[0] == "a" {
				t.Fatal("swap reported but head unchanged")
			}
		}
	}
	rate := float64(swaps) / trials
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("swap rate = %.3f, want ≈ 0.2", rate)
	}
}

func TestLocalOptimizeShortSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if LocalOptimize(nil, func(string) float64 { return 0 }, rng) {
		t.Fatal("nil slice swapped")
	}
	one := []string{"solo"}
	if LocalOptimize(one, func(string) float64 { return 0 }, rng) {
		t.Fatal("singleton swapped")
	}
}

// Property: LocalOptimize always returns a permutation of its input, and
// without a swap the output is sorted by descending speed.
func TestQuickLocalOptimizePermutation(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		n := len(raw)
		if n > 12 {
			raw = raw[:12]
			n = 12
		}
		targets := make([]string, n)
		speeds := make(map[string]float64, n)
		for i, v := range raw {
			name := string(rune('a'+i%26)) + string(rune('0'+i/26))
			targets[i] = name
			speeds[name] = float64(v)
		}
		orig := append([]string(nil), targets...)
		rng := rand.New(rand.NewSource(seed))
		swapped := LocalOptimize(targets, func(dn string) float64 { return speeds[dn] }, rng)

		// Permutation check.
		a := append([]string(nil), orig...)
		b := append([]string(nil), targets...)
		sort.Strings(a)
		sort.Strings(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		if !swapped {
			for i := 1; i < len(targets); i++ {
				if speeds[targets[i-1]] < speeds[targets[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopN returns a prefix of the full speed-sorted candidate
// order, for any speed table.
func TestQuickTopNPrefix(t *testing.T) {
	f := func(vals []uint16, nRaw uint8) bool {
		g := NewRegistry()
		records := map[string]float64{}
		var candidates []string
		for i, v := range vals {
			if i >= 16 {
				break
			}
			name := string(rune('a' + i))
			records[name] = float64(v)
			candidates = append(candidates, name)
		}
		if len(candidates) == 0 {
			return true
		}
		g.Update("c", records)
		full := g.TopN("c", len(candidates), candidates)
		n := int(nRaw)%len(candidates) + 1
		part := g.TopN("c", n, candidates)
		if len(part) != n {
			return false
		}
		for i := range part {
			if part[i] != full[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
