// Package core implements SMARTH's decision algorithms — the paper's
// primary contribution, separated from the data plane so that both the
// real cluster implementation and the discrete-event simulator execute
// exactly the same logic:
//
//   - client-side transfer-speed recording (per first-datanode), reported
//     to the namenode with heartbeats every 3 seconds;
//   - the namenode-side speed registry backing the global optimization
//     (Algorithm 1): choose the first pipeline datanode at random among
//     the client's TopN fastest, n = activeDatanodes / replication;
//   - the client-side local optimization (Algorithm 2): sort pipeline
//     targets by locally-observed speed, and with probability
//     1 - threshold (threshold = 0.8) swap the first target with a random
//     other to refresh stale measurements;
//   - the pipeline-concurrency rules of §IV-C: max pipelines =
//     activeDatanodes / replication and at most one active pipeline per
//     datanode per client.
package core

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// HeartbeatInterval is how often clients push speed records to the
// namenode (the paper piggybacks on Hadoop's 3-second heartbeat).
const HeartbeatInterval = 3 * time.Second

// SwapThreshold is Algorithm 2's threshold: a uniform r in [0,1) greater
// than this triggers the exploration swap, i.e. swap probability 0.2.
const SwapThreshold = 0.8

// ewmaAlpha weights the newest block-transfer measurement when updating a
// datanode's recorded speed. High enough to track changing conditions,
// low enough to ride out single-block noise.
const ewmaAlpha = 0.5

// MaxPipelines is the paper's cap on concurrent pipelines for one client
// (§III-B / §IV-C): cluster size divided by the replication factor, and
// never below 1.
func MaxPipelines(activeDatanodes, replication int) int {
	if replication <= 0 {
		replication = 1
	}
	n := activeDatanodes / replication
	if n < 1 {
		n = 1
	}
	return n
}

// Recorder accumulates a client's observed transfer speeds to each first
// datanode it has used. It is safe for concurrent use (the streamer
// records while the heartbeat goroutine snapshots).
type Recorder struct {
	mu     sync.Mutex
	speeds map[string]float64 // datanode -> bytes/second (EWMA)
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{speeds: make(map[string]float64)}
}

// Record folds one block transfer (bytes sent to datanode dn over
// elapsed) into the datanode's speed estimate. Non-positive inputs are
// ignored.
func (r *Recorder) Record(dn string, bytes int64, elapsed time.Duration) {
	if bytes <= 0 || elapsed <= 0 {
		return
	}
	speed := float64(bytes) / elapsed.Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.speeds[dn]; ok {
		r.speeds[dn] = old + ewmaAlpha*(speed-old)
	} else {
		r.speeds[dn] = speed
	}
}

// Speed returns the recorded speed for dn (0 if never measured).
func (r *Recorder) Speed(dn string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.speeds[dn]
}

// Snapshot copies the current speed table, e.g. for a heartbeat payload.
func (r *Recorder) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.speeds))
	for k, v := range r.speeds {
		out[k] = v
	}
	return out
}

// Len returns the number of datanodes with a recorded speed.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.speeds)
}

// Registry is the namenode-side store of per-client speed records,
// updated from heartbeats; it backs Algorithm 1.
type Registry struct {
	mu      sync.RWMutex
	clients map[string]map[string]float64 // client -> datanode -> speed
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{clients: make(map[string]map[string]float64)}
}

// Update merges a heartbeat's speed table for a client. Entries replace
// previous values for the same datanode; datanodes absent from records
// keep their old values (a client only reports what it re-measured).
func (g *Registry) Update(client string, records map[string]float64) {
	if len(records) == 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	table := g.clients[client]
	if table == nil {
		table = make(map[string]float64, len(records))
		g.clients[client] = table
	}
	for dn, speed := range records {
		table[dn] = speed
	}
}

// Forget drops all records mentioning a datanode (e.g. it was declared
// dead), so it stops being preferred on stale data.
func (g *Registry) Forget(dn string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, table := range g.clients {
		delete(table, dn)
	}
}

// ForgetClient drops a client's records (lease expiry).
func (g *Registry) ForgetClient(client string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.clients, client)
}

// HasRecords reports whether the namenode has any measurements for the
// client — Algorithm 1 falls back to the default HDFS placement when it
// does not.
func (g *Registry) HasRecords(client string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.clients[client]) > 0
}

// TopN returns up to n datanodes from candidates ordered by the client's
// recorded speed, fastest first. Candidates without records sort last
// (speed 0) but are still eligible; ties break by name for determinism.
func (g *Registry) TopN(client string, n int, candidates []string) []string {
	if n <= 0 || len(candidates) == 0 {
		return nil
	}
	g.mu.RLock()
	table := g.clients[client]
	type entry struct {
		dn    string
		speed float64
	}
	entries := make([]entry, 0, len(candidates))
	for _, dn := range candidates {
		entries = append(entries, entry{dn: dn, speed: table[dn]})
	}
	g.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].speed != entries[j].speed {
			return entries[i].speed > entries[j].speed
		}
		return entries[i].dn < entries[j].dn
	})
	if n > len(entries) {
		n = len(entries)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = entries[i].dn
	}
	return out
}

// Speed returns the client's recorded speed for one datanode (0 when
// never reported). A point lookup — policies consult it per candidate
// without copying the whole table.
func (g *Registry) Speed(client, dn string) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.clients[client][dn]
}

// Speeds returns a copy of the client's speed table.
func (g *Registry) Speeds(client string) map[string]float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]float64, len(g.clients[client]))
	for dn, s := range g.clients[client] {
		out[dn] = s
	}
	return out
}

// LocalOptimize is Algorithm 2. It reorders targets in place: first it
// sorts them by the client's locally recorded speeds (descending), then
// with probability 1-SwapThreshold swaps the head with a uniformly random
// other target so that slow or unmeasured datanodes get re-measured
// occasionally. It reports whether the exploration swap happened.
//
// speedOf supplies the client's current estimate for a datanode (0 for
// never-measured). rng drives both the sort's tiebreak stability (none —
// the sort is stable) and the swap decision.
func LocalOptimize(targets []string, speedOf func(string) float64, rng *rand.Rand) bool {
	if len(targets) < 2 {
		return false
	}
	sort.SliceStable(targets, func(i, j int) bool {
		return speedOf(targets[i]) > speedOf(targets[j])
	})
	if rng.Float64() > SwapThreshold {
		idx := 1 + rng.Intn(len(targets)-1)
		targets[0], targets[idx] = targets[idx], targets[0]
		return true
	}
	return false
}
