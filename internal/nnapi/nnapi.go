// Package nnapi defines the control-plane message types exchanged with
// the namenode over RPC: the ClientProtocol (create, addBlock, complete,
// recoverBlock, clientHeartbeat, getBlockLocations) and the
// DatanodeProtocol (register, heartbeat, blockReceived). It exists apart
// from the namenode package so clients and datanodes can share the types
// without import cycles.
package nnapi

import (
	"encoding/json"

	"repro/internal/block"
	"repro/internal/proto"
)

// Method names (the RPC registry keys).
const (
	MethodCreate            = "ClientProtocol.create"
	MethodAddBlock          = "ClientProtocol.addBlock"
	MethodAbandonBlock      = "ClientProtocol.abandonBlock"
	MethodComplete          = "ClientProtocol.complete"
	MethodRecoverBlock      = "ClientProtocol.recoverBlock"
	MethodClientHeartbeat   = "ClientProtocol.clientHeartbeat"
	MethodGetBlockLocations = "ClientProtocol.getBlockLocations"
	MethodGetFileInfo       = "ClientProtocol.getFileInfo"
	MethodClusterInfo       = "ClientProtocol.clusterInfo"
	MethodDelete            = "ClientProtocol.delete"
	MethodRename            = "ClientProtocol.rename"
	MethodList              = "ClientProtocol.list"
	// MethodBatch executes several control-plane operations in one RPC
	// frame, strictly in entry order. It is how the client's FIFO
	// namenode worker preserves the heartbeat-before-addBlock wire
	// invariant while cutting frame count.
	MethodBatch             = "ClientProtocol.batch"
	MethodRegister          = "DatanodeProtocol.register"
	MethodHeartbeat         = "DatanodeProtocol.heartbeat"
	MethodBlockReceived     = "DatanodeProtocol.blockReceived"
	// MethodBlockReceivedBatch is the datanode's delta block report: all
	// replicas finalized since the last report, in one frame.
	MethodBlockReceivedBatch = "DatanodeProtocol.blockReceivedBatch"
	MethodDecommission      = "AdminProtocol.decommission"
	MethodDecommStatus      = "AdminProtocol.decommissionStatus"
	MethodBalance           = "AdminProtocol.balance"
)

// CreateReq creates a file in the namespace (step 1 of a write).
type CreateReq struct {
	Path        string
	Client      string
	Replication int
	BlockSize   int64
	Overwrite   bool
	// Policy names the write policy (internal/policy) deciding the
	// file's effective replication factor. Empty means the default.
	Policy string
}

// CreateResp acknowledges namespace creation.
type CreateResp struct{}

// AddBlockReq allocates the next block of a file and a target pipeline.
type AddBlockReq struct {
	Path   string
	Client string
	// Mode selects the placement policy: ModeHDFS uses the default
	// topology placement, ModeSmarth runs Algorithm 1.
	Mode proto.WriteMode
	// Exclude lists datanodes that must not be chosen — the SMARTH rule
	// that a datanode may serve only one active pipeline per client, and
	// the recovery rule excluding known-bad nodes.
	Exclude []string
	// Previous is the last block the client was granted for this file
	// (zero when requesting the first block). It makes retried addBlock
	// calls idempotent: if a timed-out attempt already executed at the
	// namenode, the file's tail is a block the client never saw, and the
	// namenode hands that block back (with a fresh pipeline) instead of
	// allocating an orphan that would stall Complete forever.
	Previous block.Block
	// Policy names the placement policy (internal/policy) choosing the
	// pipeline. Empty means the default; the Mode still distinguishes
	// the HDFS and SMARTH paths within a policy.
	Policy string
}

// AddBlockResp returns the allocated block and its pipeline.
type AddBlockResp struct {
	Located block.LocatedBlock
}

// AbandonBlockReq drops an allocated-but-unwritten block (client-side
// failure before any data was stored).
type AbandonBlockReq struct {
	Path   string
	Client string
	Block  block.Block
}

// AbandonBlockResp acknowledges the abandon.
type AbandonBlockResp struct{}

// CompleteReq finishes a file (step 6 of a write).
type CompleteReq struct {
	Path   string
	Client string
}

// CompleteResp reports whether the namenode considers the file complete
// (all blocks minimally replicated).
type CompleteResp struct {
	Done bool
}

// RecoverBlockReq re-provisions a failed pipeline: the namenode bumps the
// block's generation stamp and returns a fresh target list consisting of
// the surviving datanodes plus replacements for the failed ones
// (Algorithm 3 line 10). The client then re-streams the block.
type RecoverBlockReq struct {
	Path   string
	Client string
	Block  block.Block
	// Alive are the pipeline datanodes the client still trusts.
	Alive []string
	// Exclude are datanodes that must not be selected as replacements
	// (the failed nodes, plus SMARTH's one-pipeline-per-datanode set).
	Exclude []string
	Mode    proto.WriteMode
	// Policy names the placement policy (internal/policy) choosing
	// replacement targets. Empty means the default.
	Policy string
}

// RecoverBlockResp carries the re-stamped block and new pipeline.
type RecoverBlockResp struct {
	Located block.LocatedBlock
}

// ClientHeartbeatReq reports a client's observed per-datanode transfer
// speeds (bytes/second), every core.HeartbeatInterval.
type ClientHeartbeatReq struct {
	Client string
	Speeds map[string]float64
}

// ClientHeartbeatResp acknowledges the heartbeat.
type ClientHeartbeatResp struct{}

// GetBlockLocationsReq asks where a file's blocks live. When Client is
// set, each block's replica holders are ordered by network distance from
// the client (local node first, then same rack), so reads prefer close
// replicas.
type GetBlockLocationsReq struct {
	Path   string
	Client string
}

// DeleteReq removes a file and schedules its replicas for deletion.
type DeleteReq struct {
	Path string
}

// DeleteResp reports whether the file existed.
type DeleteResp struct {
	Deleted bool
}

// RenameReq moves a file in the namespace.
type RenameReq struct {
	Src, Dst string
}

// RenameResp acknowledges the rename.
type RenameResp struct{}

// ListReq enumerates files whose path starts with Prefix ("" = all).
type ListReq struct {
	Prefix string
}

// FileStatus is one List entry.
type FileStatus struct {
	Path        string
	Len         int64
	Replication int
	Complete    bool
	NumBlocks   int
	// MinLiveReplicas is the smallest live replica count across the
	// file's blocks (fsck health).
	MinLiveReplicas int
}

// ListResp carries the sorted file statuses.
type ListResp struct {
	Files []FileStatus
}

// GetBlockLocationsResp lists each block with the datanodes known to hold
// a finalized replica.
type GetBlockLocationsResp struct {
	Blocks []block.LocatedBlock
	Len    int64
}

// GetFileInfoReq asks for file metadata.
type GetFileInfoReq struct {
	Path string
}

// GetFileInfoResp describes a file.
type GetFileInfoResp struct {
	Exists      bool
	Complete    bool
	Len         int64
	Replication int
	BlockSize   int64
	NumBlocks   int
}

// ClusterInfoReq asks for cluster-wide counts.
type ClusterInfoReq struct{}

// ClusterInfoResp reports live cluster geometry; clients use it to size
// the SMARTH pipeline cap (activeDatanodes / replication).
type ClusterInfoResp struct {
	ActiveDatanodes int
	Racks           int
	// SafeMode is true while the namenode rejects namespace mutations
	// after a restart (block reports still incomplete).
	SafeMode bool
}

// DecommissionReq starts (or, with Cancel, stops) draining a datanode:
// it stops receiving new pipelines while its replicas are copied
// elsewhere; it keeps serving reads meanwhile.
type DecommissionReq struct {
	Name   string
	Cancel bool
}

// DecommissionResp acknowledges the state change.
type DecommissionResp struct{}

// DecommStatusReq asks how far a drain has progressed.
type DecommStatusReq struct {
	Name string
}

// DecommStatusResp reports drain progress: Done means every block the
// node holds already has full replication on other placeable nodes, so
// the node can be shut down without losing redundancy.
type DecommStatusResp struct {
	Decommissioning bool
	Done            bool
	// RemainingBlocks still depend on this node for full replication.
	RemainingBlocks int
}

// BalanceReq asks the namenode to compute and start one round of
// balancer moves (copy-then-delete replica migrations from over-full to
// under-full datanodes).
type BalanceReq struct {
	// Threshold is the allowed deviation from the mean utilization
	// before a node is considered over/under-full, as a fraction of the
	// mean (default 0.1).
	Threshold float64
	// MaxMoves bounds the moves scheduled this round (default 16).
	MaxMoves int
}

// BalanceResp reports what the round scheduled.
type BalanceResp struct {
	Moves     int
	MeanBytes int64
}

// RegisterReq announces a datanode (on startup or after a restart), with
// a report of the finalized blocks it already holds.
type RegisterReq struct {
	Name   string
	Addr   string
	Rack   string
	Blocks []block.Block
}

// RegisterResp acknowledges registration.
type RegisterResp struct{}

// HeartbeatReq is the periodic datanode liveness beacon.
type HeartbeatReq struct {
	Name      string
	UsedBytes int64
}

// ReplicateCmd asks a datanode to copy one of its finalized replicas to
// the given targets — the namenode's response to a block becoming
// under-replicated after a datanode death.
type ReplicateCmd struct {
	Block   block.Block
	Targets []block.DatanodeInfo
}

// HeartbeatResp can carry work back to the datanode; Invalidate lists
// blocks the datanode should delete. Each entry's Gen is the stale bound:
// the datanode deletes its replica only if the replica's generation is at
// or below it, so invalidations queued before a recovery never destroy
// the re-streamed (newer-generation) replica. Replicate lists transfer
// work for under-replicated blocks this datanode holds.
type HeartbeatResp struct {
	Invalidate []block.Block
	Replicate  []ReplicateCmd
}

// BlockReceivedReq tells the namenode a datanode finalized a replica.
type BlockReceivedReq struct {
	Name  string
	Block block.Block
}

// BlockReceivedResp acknowledges the report.
type BlockReceivedResp struct{}

// BlockReceivedBatchReq is a delta block report: every replica the
// datanode finalized since its previous report, in finalization order.
// It replaces a burst of per-block blockReceived RPCs with one frame;
// the namenode ingests entries in order, so a recovery's newer
// generation reported after a stale one still wins.
type BlockReceivedBatchReq struct {
	Name   string
	Blocks []block.Block
}

// BlockReceivedBatchResp acknowledges a delta report. Rejected is the
// count of entries the namenode refused (unknown block or stale
// generation); those replicas are dropped, mirroring the per-block RPC's
// error, and the datanode does not retry them.
type BlockReceivedBatchResp struct {
	Rejected int
}

// MaxBatchEntries bounds how many operations one batch RPC may carry.
// The cap keeps a single frame from monopolizing a namenode dispatch
// goroutine and bounds request-frame size.
const MaxBatchEntries = 64

// BatchEntry is one operation inside a batch RPC: the method name and
// its JSON-encoded request body, exactly as they would appear in a
// standalone call.
type BatchEntry struct {
	Method string
	Body   json.RawMessage
}

// BatchReq carries ordered control-plane operations to execute in one
// frame. The namenode executes entries strictly in slice order and never
// concurrently with each other, so a [clientHeartbeat, addBlock] pair
// batched by the client observes the same state sequence as two separate
// in-order RPCs. Nested batches are rejected.
type BatchReq struct {
	Entries []BatchEntry
}

// BatchResult is the outcome of one batch entry: the JSON-encoded
// response body on success, or the error text (Err non-empty) on
// failure. A failed entry does not abort the rest of the batch — each
// entry succeeds or fails exactly as a standalone RPC would.
type BatchResult struct {
	Body json.RawMessage
	Err  string
}

// BatchResp carries one result per request entry, in order.
type BatchResp struct {
	Results []BatchResult
}
