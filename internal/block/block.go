// Package block defines the identities shared by the namenode, datanodes
// and clients: blocks, generation stamps, datanode descriptors and the
// located-block results returned by addBlock.
package block

import "fmt"

// ID uniquely identifies a block within a cluster.
type ID int64

// GenStamp is a block's generation stamp. The namenode bumps it during
// pipeline recovery so stale replicas written by a failed pipeline can be
// told apart from recovered ones.
type GenStamp uint64

// Block identifies one block and its committed length.
type Block struct {
	ID       ID
	Gen      GenStamp
	NumBytes int64
}

func (b Block) String() string {
	return fmt.Sprintf("blk_%d_%d(len=%d)", b.ID, b.Gen, b.NumBytes)
}

// SameID reports whether two blocks refer to the same identity regardless
// of generation or length.
func (b Block) SameID(o Block) bool { return b.ID == o.ID }

// DatanodeInfo describes a datanode as seen by clients: a stable name, a
// dialable transport address, and a rack for topology-aware decisions.
type DatanodeInfo struct {
	Name string // stable logical name, e.g. "dn3"
	Addr string // transport address for data transfer
	Rack string // network location, e.g. "/rack-a"
}

func (d DatanodeInfo) String() string { return d.Name + "@" + d.Addr }

// LocatedBlock is the namenode's answer to addBlock: the new block plus
// the ordered pipeline of datanodes that should store it.
type LocatedBlock struct {
	Block   Block
	Targets []DatanodeInfo
}

// Names returns the target datanode names in pipeline order.
func (lb LocatedBlock) Names() []string {
	out := make([]string, len(lb.Targets))
	for i, t := range lb.Targets {
		out[i] = t.Name
	}
	return out
}

// WithoutTargets returns a copy of lb whose target list excludes the named
// datanodes, preserving order. Used during pipeline recovery.
func (lb LocatedBlock) WithoutTargets(exclude map[string]bool) LocatedBlock {
	kept := make([]DatanodeInfo, 0, len(lb.Targets))
	for _, t := range lb.Targets {
		if !exclude[t.Name] {
			kept = append(kept, t)
		}
	}
	return LocatedBlock{Block: lb.Block, Targets: kept}
}
