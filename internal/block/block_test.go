package block

import (
	"strings"
	"testing"
)

func TestBlockString(t *testing.T) {
	b := Block{ID: 42, Gen: 7, NumBytes: 100}
	s := b.String()
	for _, want := range []string{"blk_42", "7", "100"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestSameID(t *testing.T) {
	a := Block{ID: 1, Gen: 1}
	b := Block{ID: 1, Gen: 9, NumBytes: 55}
	c := Block{ID: 2, Gen: 1}
	if !a.SameID(b) {
		t.Fatal("same IDs not recognized")
	}
	if a.SameID(c) {
		t.Fatal("different IDs matched")
	}
}

func TestDatanodeInfoString(t *testing.T) {
	d := DatanodeInfo{Name: "dn1", Addr: "host:1234", Rack: "/r"}
	if got := d.String(); got != "dn1@host:1234" {
		t.Fatalf("String() = %q", got)
	}
}

func lb() LocatedBlock {
	return LocatedBlock{
		Block: Block{ID: 3},
		Targets: []DatanodeInfo{
			{Name: "a"}, {Name: "b"}, {Name: "c"},
		},
	}
}

func TestNames(t *testing.T) {
	got := lb().Names()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v", got)
		}
	}
}

func TestWithoutTargets(t *testing.T) {
	out := lb().WithoutTargets(map[string]bool{"b": true})
	if len(out.Targets) != 2 || out.Targets[0].Name != "a" || out.Targets[1].Name != "c" {
		t.Fatalf("WithoutTargets = %v", out.Names())
	}
	if out.Block.ID != 3 {
		t.Fatal("block identity lost")
	}
	// Original untouched.
	if len(lb().Targets) != 3 {
		t.Fatal("source mutated")
	}
	// Excluding nothing copies everything.
	all := lb().WithoutTargets(nil)
	if len(all.Targets) != 3 {
		t.Fatalf("WithoutTargets(nil) = %v", all.Names())
	}
	// Excluding everything leaves an empty pipeline.
	none := lb().WithoutTargets(map[string]bool{"a": true, "b": true, "c": true})
	if len(none.Targets) != 0 {
		t.Fatalf("WithoutTargets(all) = %v", none.Names())
	}
}
