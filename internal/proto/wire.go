package proto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/bufpool"
	"repro/internal/checksum"
	"repro/internal/clock"
	"repro/internal/obs"
)

// packetPool recycles Packet structs between ReadPacket and Release.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// releaseFrame returns a pooled frame buffer. nil is ignored.
func releaseFrame(fr *[]byte) { bufpool.Put(fr) }

// deadlineSetter is the subset of net.Conn deadline control that
// transport conns implement; streams without it simply don't support
// timeouts (SetReadTimeout/SetWriteTimeout become no-ops).
type deadlineSetter interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// Conn wraps a stream with buffered, frame-oriented message I/O. It is
// safe for one concurrent reader and one concurrent writer, which matches
// pipeline usage (packets flow one way, acks the other on a second Conn).
type Conn struct {
	r *bufio.Reader
	w *bufio.Writer
	c io.Closer
	d deadlineSetter

	// corked suppresses the per-data-packet flush; see SetCork. Owned by
	// the writing side, like w. whdr/rhdr are length-prefix scratch —
	// fields rather than locals so they don't escape per frame.
	corked bool
	whdr   [4]byte
	rhdr   [4]byte

	// ack and ackStatuses back the *Ack returned by ReadAck, so the
	// per-packet ack stream decodes without allocating. Owned by the
	// reading side, like r.
	ack         Ack
	ackStatuses []Status

	// metrics, when set, receives frame-level counters (bytes and frames
	// each way, flushes, corked frames). All increments are atomic and
	// allocation-free, so metrics may stay attached on the hot path.
	metrics *obs.ConnMetrics

	mu       sync.Mutex
	clk      clock.Clock
	rTimeout time.Duration
	wTimeout time.Duration
}

// NewConn wraps rw. If rw is an io.Closer, Close closes it; if it
// supports deadlines, per-operation timeouts become available.
func NewConn(rw io.ReadWriter) *Conn {
	c, _ := rw.(io.Closer)
	d, _ := rw.(deadlineSetter)
	return &Conn{
		r:   bufio.NewReaderSize(rw, 128<<10),
		w:   bufio.NewWriterSize(rw, 128<<10),
		c:   c,
		d:   d,
		clk: clock.System,
	}
}

// SetClock replaces the clock used to compute operation deadlines (for
// virtual-time runs). nil restores the system clock.
func (c *Conn) SetClock(clk clock.Clock) {
	if clk == nil {
		clk = clock.System
	}
	c.mu.Lock()
	c.clk = clk
	c.mu.Unlock()
}

// SetReadTimeout bounds each subsequent frame read (header, packet or
// ack): the deadline is re-armed per operation, so it is a progress
// timeout, not a whole-stream budget. d <= 0 disables the bound. No-op
// if the underlying stream has no deadline support.
func (c *Conn) SetReadTimeout(d time.Duration) {
	if c.d == nil {
		return
	}
	c.mu.Lock()
	c.rTimeout = d
	c.mu.Unlock()
	if d <= 0 {
		c.d.SetReadDeadline(time.Time{})
	}
}

// SetWriteTimeout bounds each subsequent frame write. d <= 0 disables
// the bound. No-op if the underlying stream has no deadline support.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	if c.d == nil {
		return
	}
	c.mu.Lock()
	c.wTimeout = d
	c.mu.Unlock()
	if d <= 0 {
		c.d.SetWriteDeadline(time.Time{})
	}
}

// armRead applies the per-operation read deadline, if any.
func (c *Conn) armRead() {
	if c.d == nil {
		return
	}
	c.mu.Lock()
	d, clk := c.rTimeout, c.clk
	c.mu.Unlock()
	if d > 0 {
		c.d.SetReadDeadline(clk.Now().Add(d))
	}
}

// armWrite applies the per-operation write deadline, if any.
func (c *Conn) armWrite() {
	if c.d == nil {
		return
	}
	c.mu.Lock()
	d, clk := c.wTimeout, c.clk
	c.mu.Unlock()
	if d > 0 {
		c.d.SetWriteDeadline(clk.Now().Add(d))
	}
}

// SetMetrics attaches frame-level counters to the conn (nil detaches).
// Set it before the conn carries traffic; the counters themselves are
// concurrency-safe, so one ConnMetrics may be shared by many conns to
// aggregate per component (e.g. per datanode).
func (c *Conn) SetMetrics(m *obs.ConnMetrics) { c.metrics = m }

// Close closes the underlying stream if it is closable.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// Flush forces buffered writes onto the wire.
func (c *Conn) Flush() error { return c.w.Flush() }

// SetCork toggles corked output. While corked, data packets are not
// flushed per frame: bytes reach the wire when the write buffer fills,
// when a Last packet is written, or on an explicit Flush. Headers and
// acks always flush eagerly regardless — they are latency-sensitive
// control traffic (pipeline setup, per-packet acks, the FNFA) that must
// never sit behind a cork. Uncorking flushes whatever is pending.
//
// Like writes themselves, SetCork belongs to the Conn's single writing
// goroutine.
func (c *Conn) SetCork(on bool) error {
	c.corked = on
	if !on {
		return c.w.Flush()
	}
	return nil
}

// writeFrame emits one length-prefixed frame whose payload is the
// concatenation of head and tail (either may be empty). Splitting the
// frame into two vectors lets WritePacket send its encoded header and
// checksums from a small pooled scratch while the 64 KB payload flows
// straight from the caller's buffer, never memcpy'd into a frame.
// flush=false leaves the frame in the buffer (corked packet traffic).
func (c *Conn) writeFrame(head, tail []byte, flush bool) error {
	n := len(head) + len(tail)
	if n > MaxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	c.armWrite()
	binary.BigEndian.PutUint32(c.whdr[:], uint32(n))
	if _, err := c.w.Write(c.whdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(head); err != nil {
		return err
	}
	if len(tail) > 0 {
		if _, err := c.w.Write(tail); err != nil {
			return err
		}
	}
	if m := c.metrics; m != nil {
		m.FramesOut.Inc()
		m.BytesOut.Add(int64(4 + n))
		if flush {
			m.Flushes.Inc()
		} else {
			m.CorkedFrames.Inc()
		}
	}
	if !flush {
		return nil
	}
	return c.w.Flush()
}

// readFrame reads one length-prefixed frame into a pooled buffer. The
// caller owns the returned buffer and must hand it back via
// bufpool.Put (or transfer it into a Packet, whose Release does so).
func (c *Conn) readFrame() (*[]byte, error) {
	c.armRead()
	if _, err := io.ReadFull(c.r, c.rhdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(c.rhdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("proto: incoming frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	fr := bufpool.Get(int(n))
	if _, err := io.ReadFull(c.r, *fr); err != nil {
		bufpool.Put(fr)
		return nil, err
	}
	if m := c.metrics; m != nil {
		m.FramesIn.Inc()
		m.BytesIn.Add(int64(4 + n))
	}
	return fr, nil
}

// --- primitive append/consume helpers ---

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func consumeString(src []byte) (string, []byte, error) {
	if len(src) < 2 {
		return "", nil, io.ErrUnexpectedEOF
	}
	n := int(binary.BigEndian.Uint16(src))
	src = src[2:]
	if len(src) < n {
		return "", nil, io.ErrUnexpectedEOF
	}
	return string(src[:n]), src[n:], nil
}

func appendBlock(dst []byte, b block.Block) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(b.ID))
	dst = binary.BigEndian.AppendUint64(dst, uint64(b.Gen))
	dst = binary.BigEndian.AppendUint64(dst, uint64(b.NumBytes))
	return dst
}

func consumeBlock(src []byte) (block.Block, []byte, error) {
	if len(src) < 24 {
		return block.Block{}, nil, io.ErrUnexpectedEOF
	}
	b := block.Block{
		ID:       block.ID(binary.BigEndian.Uint64(src)),
		Gen:      block.GenStamp(binary.BigEndian.Uint64(src[8:])),
		NumBytes: int64(binary.BigEndian.Uint64(src[16:])),
	}
	return b, src[24:], nil
}

func appendDatanode(dst []byte, d block.DatanodeInfo) []byte {
	dst = appendString(dst, d.Name)
	dst = appendString(dst, d.Addr)
	return appendString(dst, d.Rack)
}

func consumeDatanode(src []byte) (block.DatanodeInfo, []byte, error) {
	var d block.DatanodeInfo
	var err error
	if d.Name, src, err = consumeString(src); err != nil {
		return d, nil, err
	}
	if d.Addr, src, err = consumeString(src); err != nil {
		return d, nil, err
	}
	if d.Rack, src, err = consumeString(src); err != nil {
		return d, nil, err
	}
	return d, src, nil
}

// --- operation headers ---

// WriteHeader sends an operation header frame: version, op, payload.
// Headers always flush — they open a pipeline and the peer is waiting.
func (c *Conn) WriteHeader(op Op, h any) error {
	// Pre-size the encode scratch so headers with long target lists never
	// grow mid-append; the buffer itself is pooled.
	need := 2 + 24 + 2 + 2 + 16
	if wh, ok := h.(*WriteBlockHeader); ok {
		need += len(wh.Client)
		for _, t := range wh.Targets {
			need += 6 + len(t.Name) + len(t.Addr) + len(t.Rack)
		}
	}
	bp := bufpool.GetCap(need)
	defer bufpool.Put(bp)
	buf := append(*bp, Version, byte(op))
	switch op {
	case OpWriteBlock:
		wh, ok := h.(*WriteBlockHeader)
		if !ok {
			return fmt.Errorf("proto: WriteHeader(%v) needs *WriteBlockHeader, got %T", op, h)
		}
		buf = appendBlock(buf, wh.Block)
		buf = append(buf, byte(wh.Mode), wh.Depth)
		buf = appendString(buf, wh.Client)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(wh.Targets)))
		for _, t := range wh.Targets {
			buf = appendDatanode(buf, t)
		}
	case OpReadBlock:
		rh, ok := h.(*ReadBlockHeader)
		if !ok {
			return fmt.Errorf("proto: WriteHeader(%v) needs *ReadBlockHeader, got %T", op, h)
		}
		buf = appendBlock(buf, rh.Block)
		buf = binary.BigEndian.AppendUint64(buf, uint64(rh.Offset))
		buf = binary.BigEndian.AppendUint64(buf, uint64(rh.Length))
	default:
		return fmt.Errorf("proto: unknown op %v", op)
	}
	*bp = buf
	return c.writeFrame(buf, nil, true)
}

// ReadHeader reads an operation header frame and returns the op plus the
// decoded header (*WriteBlockHeader or *ReadBlockHeader).
func (c *Conn) ReadHeader() (Op, any, error) {
	fr, err := c.readFrame()
	if err != nil {
		return 0, nil, err
	}
	defer bufpool.Put(fr)
	buf := *fr
	if len(buf) < 2 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if buf[0] != Version {
		return 0, nil, fmt.Errorf("proto: version %d, want %d", buf[0], Version)
	}
	op := Op(buf[1])
	rest := buf[2:]
	switch op {
	case OpWriteBlock:
		var wh WriteBlockHeader
		if wh.Block, rest, err = consumeBlock(rest); err != nil {
			return op, nil, err
		}
		if len(rest) < 2 {
			return op, nil, io.ErrUnexpectedEOF
		}
		wh.Mode = WriteMode(rest[0])
		wh.Depth = rest[1]
		rest = rest[2:]
		if wh.Client, rest, err = consumeString(rest); err != nil {
			return op, nil, err
		}
		if len(rest) < 2 {
			return op, nil, io.ErrUnexpectedEOF
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		wh.Targets = make([]block.DatanodeInfo, n)
		for i := 0; i < n; i++ {
			if wh.Targets[i], rest, err = consumeDatanode(rest); err != nil {
				return op, nil, err
			}
		}
		return op, &wh, nil
	case OpReadBlock:
		var rh ReadBlockHeader
		if rh.Block, rest, err = consumeBlock(rest); err != nil {
			return op, nil, err
		}
		if len(rest) < 16 {
			return op, nil, io.ErrUnexpectedEOF
		}
		rh.Offset = int64(binary.BigEndian.Uint64(rest))
		rh.Length = int64(binary.BigEndian.Uint64(rest[8:]))
		return op, &rh, nil
	default:
		return op, nil, fmt.Errorf("proto: unknown op byte 0x%02x", byte(op))
	}
}

// --- packets ---

// WritePacket frames and sends a data packet. Only the packet header and
// checksums pass through a (pooled) scratch buffer; p.Data is written as
// its own vector, so the payload is never copied into a frame. When both
// RawSums and Sums are set, RawSums wins — a forwarding datanode re-emits
// the wire bytes it received without re-encoding. The frame is flushed
// unless the Conn is corked; a Last packet always flushes (the peer is
// about to commit the block on it).
func (c *Conn) WritePacket(p *Packet) error {
	sumBytes := len(p.RawSums)
	nSums := sumBytes / checksum.BytesPerChecksum
	if p.RawSums == nil {
		nSums = len(p.Sums)
		sumBytes = nSums * checksum.BytesPerChecksum
	}
	bp := bufpool.GetCap(25 + sumBytes)
	defer bufpool.Put(bp)
	buf := *bp
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.Seqno))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.Offset))
	var flags byte
	if p.Last {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(nSums))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Data)))
	if p.RawSums != nil {
		buf = append(buf, p.RawSums...)
	} else {
		buf = checksum.Encode(buf, p.Sums)
	}
	*bp = buf
	return c.writeFrame(buf, p.Data, !c.corked || p.Last)
}

// ReadPacket reads one data packet into a pooled Packet whose Data and
// RawSums alias a pooled frame buffer. The caller owns the packet and
// must Release it exactly once; see the Packet ownership contract.
// Checksums are not decoded — verify with checksum.VerifyEncoded
// against RawSums, or decode explicitly with DecodedSums.
func (c *Conn) ReadPacket() (*Packet, error) {
	fr, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	buf := *fr
	if len(buf) < 25 {
		bufpool.Put(fr)
		return nil, io.ErrUnexpectedEOF
	}
	nSums := int(binary.BigEndian.Uint32(buf[17:]))
	nData := int(binary.BigEndian.Uint32(buf[21:]))
	rest := buf[25:]
	sumBytes := nSums * checksum.BytesPerChecksum
	if nSums > MaxFrame/checksum.BytesPerChecksum || len(rest) != sumBytes+nData {
		bufpool.Put(fr)
		return nil, fmt.Errorf("proto: packet body %d bytes, want %d sums + %d data", len(rest), nSums, nData)
	}
	p := packetPool.Get().(*Packet)
	*p = Packet{
		Seqno:   int64(binary.BigEndian.Uint64(buf)),
		Offset:  int64(binary.BigEndian.Uint64(buf[8:])),
		Last:    buf[16]&1 != 0,
		RawSums: rest[:sumBytes],
		Data:    rest[sumBytes:],
		frame:   fr,
		pooled:  true,
	}
	return p, nil
}

// --- acks ---

// WriteAck frames and sends a pipeline ack. Acks always flush: they are
// the latency-critical reverse traffic (per-packet acks and the FNFA)
// that corked data must never delay.
func (c *Conn) WriteAck(a *Ack) error {
	bp := bufpool.GetCap(11 + len(a.Statuses))
	defer bufpool.Put(bp)
	buf := *bp
	buf = append(buf, byte(a.Kind))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.Seqno))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(a.Statuses)))
	for _, s := range a.Statuses {
		buf = append(buf, byte(s))
	}
	*bp = buf
	return c.writeFrame(buf, nil, true)
}

// ReadAck reads one pipeline ack. The returned *Ack is owned by the
// Conn and valid only until the next ReadAck on this Conn; callers that
// retain it (or its Statuses) must copy.
func (c *Conn) ReadAck() (*Ack, error) {
	fr, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	defer bufpool.Put(fr)
	buf := *fr
	if len(buf) < 11 {
		return nil, io.ErrUnexpectedEOF
	}
	n := int(binary.BigEndian.Uint16(buf[9:]))
	if len(buf) != 11+n {
		return nil, fmt.Errorf("proto: ack body %d bytes, want %d statuses", len(buf)-11, n)
	}
	if cap(c.ackStatuses) < n {
		c.ackStatuses = make([]Status, n)
	}
	sts := c.ackStatuses[:n]
	for i := 0; i < n; i++ {
		sts[i] = Status(buf[11+i])
	}
	c.ack = Ack{
		Kind:     AckKind(buf[0]),
		Seqno:    int64(binary.BigEndian.Uint64(buf[1:])),
		Statuses: sts,
	}
	return &c.ack, nil
}
