package proto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/bufpool"
	"repro/internal/checksum"
	"repro/internal/clock"
	"repro/internal/obs"
)

// packetPool recycles Packet structs between ReadPacket and Release.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// releaseFrame returns a pooled frame buffer. nil is ignored.
func releaseFrame(fr *[]byte) { bufpool.Put(fr) }

// deadlineSetter is the subset of net.Conn deadline control that
// transport conns implement; streams without it simply don't support
// timeouts (SetReadTimeout/SetWriteTimeout become no-ops).
type deadlineSetter interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// buffersWriter is implemented by streams that can emit a vector of
// buffers in one gather call (writev on the TCP substrate). The frame
// writer duck-types on it at flush time; streams without it get
// sequential writes, which is behaviorally identical.
type buffersWriter interface {
	WriteBuffers(*net.Buffers) (int64, error)
}

const (
	// borrowMin is the smallest frame tail worth sending as its own
	// write vector. Tails at least this large are borrowed (zero-copy)
	// and force a flush before writeFrame returns, which is what keeps
	// WritePacket's "never retains any field" contract true; smaller
	// tails are copied into the staging buffer so tiny frames coalesce.
	borrowMin = 4 << 10

	// defaultCorkBytes is the pending-byte threshold at which a corked
	// conn flushes anyway (see SetAutoCork). Matches the write-buffer
	// size the pre-vectored implementation flushed at.
	defaultCorkBytes = 128 << 10

	// directReadMin is the smallest body remainder read straight from
	// the underlying stream instead of through the read buffer, skipping
	// one copy. Below it, going through bufio is cheaper than a syscall.
	directReadMin = 512

	// readBufSize sizes the buffered reader. It only needs to cover
	// frame prefixes and small control frames (headers, acks, packet
	// headers plus checksums); packet payloads scatter straight into
	// pooled frame buffers via readBody.
	readBufSize = 8 << 10
)

// wspan is one pending write vector: either a range of frameWriter.stage
// (ext nil) or a borrowed external buffer. Stage spans hold offsets, not
// slices, so stage may reallocate while spans are pending.
type wspan struct {
	ext      []byte
	off, end int
}

// frameWriter accumulates frames as write vectors and emits them in one
// gather write per flush. Small byte runs are copied into stage (adjacent
// runs merge into one span); large payloads are borrowed and flushed
// before the caller regains ownership.
type frameWriter struct {
	w  io.Writer
	bw buffersWriter // non-nil when w supports gather writes

	stage   []byte
	spans   []wspan
	pending int

	vecs   [][]byte    // flush scratch; cleared of refs after use
	gather net.Buffers // header handed to WriteBuffers, which advances it
}

// stageBytes copies p into the staging buffer, merging with the previous
// span when contiguous.
func (f *frameWriter) stageBytes(p []byte) {
	if len(p) == 0 {
		return
	}
	off := len(f.stage)
	f.stage = append(f.stage, p...)
	if n := len(f.spans); n > 0 && f.spans[n-1].ext == nil && f.spans[n-1].end == off {
		f.spans[n-1].end = len(f.stage)
	} else {
		f.spans = append(f.spans, wspan{off: off, end: len(f.stage)})
	}
	f.pending += len(p)
}

// borrow appends p as its own vector without copying. The caller must
// flush before p's owner may reuse it.
func (f *frameWriter) borrow(p []byte) {
	if len(p) == 0 {
		return
	}
	f.spans = append(f.spans, wspan{ext: p})
	f.pending += len(p)
}

// flush writes every pending span — one writev when the stream supports
// gather writes, sequential writes otherwise — and resets the writer.
// External buffer references are dropped either way.
func (f *frameWriter) flush() error {
	if len(f.spans) == 0 {
		return nil
	}
	f.vecs = f.vecs[:0]
	for _, s := range f.spans {
		if s.ext != nil {
			f.vecs = append(f.vecs, s.ext)
		} else {
			f.vecs = append(f.vecs, f.stage[s.off:s.end])
		}
	}
	var err error
	if f.bw != nil && len(f.vecs) > 1 {
		// Hand WriteBuffers its own slice header: it advances (and may
		// re-slice entries of) whatever it is given, and f.vecs must keep
		// spanning the whole backing array so the cleanup below sees every
		// entry.
		f.gather = f.vecs
		_, err = f.bw.WriteBuffers(&f.gather)
		f.gather = nil
	} else {
		for _, v := range f.vecs {
			if _, werr := f.w.Write(v); werr != nil {
				err = werr
				break
			}
		}
	}
	// Drop payload references: pending borrowed buffers must not outlive
	// the flush (their owners recycle them).
	for i := range f.vecs {
		f.vecs[i] = nil
	}
	f.vecs = f.vecs[:0]
	f.spans = f.spans[:0]
	f.stage = f.stage[:0]
	f.pending = 0
	return err
}

// clockBox wraps a clock so it can live in an atomic.Pointer (interfaces
// of differing concrete types cannot be stored in atomic.Value directly).
type clockBox struct{ c clock.Clock }

var systemClockBox = &clockBox{clock.System}

// Conn wraps a stream with buffered, frame-oriented message I/O. It is
// safe for one concurrent reader and one concurrent writer, which matches
// pipeline usage (packets flow one way, acks the other on a second Conn).
type Conn struct {
	r   *bufio.Reader
	raw io.ReadWriter // underlying stream, for scatter body reads
	fw  frameWriter
	c   io.Closer
	d   deadlineSetter

	// Cork state; owned by the writing side, like fw. corked suppresses
	// the per-data-packet flush; corkBytes/corkDelay are the adaptive
	// flush thresholds (see SetAutoCork); corkFirst stamps the oldest
	// pending frame (tracked only when corkDelay > 0).
	corked    bool
	corkBytes int
	corkDelay time.Duration
	corkFirst time.Time

	// whdr/rhdr are length-prefix scratch — fields rather than locals so
	// they don't escape per frame.
	whdr [4]byte
	rhdr [4]byte

	// ack and ackStatuses back the *Ack returned by ReadAck, so the
	// per-packet ack stream decodes without allocating. Owned by the
	// reading side, like r.
	ack         Ack
	ackStatuses []Status

	// metrics, when set, receives frame-level counters (bytes and frames
	// each way, flushes, corked frames). All increments are atomic and
	// allocation-free, so metrics may stay attached on the hot path.
	metrics *obs.ConnMetrics

	// Timeouts and the clock are atomics, not mutex-guarded: both the
	// reader and the writer consult them on every frame, and a watchdog
	// may retune them concurrently.
	clk      atomic.Pointer[clockBox]
	rTimeout atomic.Int64 // nanoseconds; <= 0 disabled
	wTimeout atomic.Int64
}

// NewConn wraps rw. If rw is an io.Closer, Close closes it; if it
// supports deadlines, per-operation timeouts become available; if it
// supports gather writes (WriteBuffers), frames go out as one writev.
func NewConn(rw io.ReadWriter) *Conn {
	c, _ := rw.(io.Closer)
	d, _ := rw.(deadlineSetter)
	bw, _ := rw.(buffersWriter)
	cn := &Conn{
		r:   bufio.NewReaderSize(rw, readBufSize),
		raw: rw,
		fw:  frameWriter{w: rw, bw: bw},
		c:   c,
		d:   d,
	}
	cn.clk.Store(systemClockBox)
	return cn
}

// SetClock replaces the clock used to compute operation deadlines (for
// virtual-time runs). nil restores the system clock.
func (c *Conn) SetClock(clk clock.Clock) {
	if clk == nil {
		c.clk.Store(systemClockBox)
		return
	}
	c.clk.Store(&clockBox{clk})
}

func (c *Conn) clock() clock.Clock { return c.clk.Load().c }

// SetReadTimeout bounds each subsequent frame read (header, packet or
// ack): the deadline is re-armed per operation, so it is a progress
// timeout, not a whole-stream budget. d <= 0 disables the bound. No-op
// if the underlying stream has no deadline support.
func (c *Conn) SetReadTimeout(d time.Duration) {
	if c.d == nil {
		return
	}
	c.rTimeout.Store(int64(d))
	if d <= 0 {
		c.d.SetReadDeadline(time.Time{})
	}
}

// SetWriteTimeout bounds each subsequent frame write. d <= 0 disables
// the bound. No-op if the underlying stream has no deadline support.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	if c.d == nil {
		return
	}
	c.wTimeout.Store(int64(d))
	if d <= 0 {
		c.d.SetWriteDeadline(time.Time{})
	}
}

// armRead applies the per-operation read deadline, if any.
func (c *Conn) armRead() {
	if c.d == nil {
		return
	}
	if d := time.Duration(c.rTimeout.Load()); d > 0 {
		c.d.SetReadDeadline(c.clock().Now().Add(d))
	}
}

// armWrite applies the per-operation write deadline, if any.
func (c *Conn) armWrite() {
	if c.d == nil {
		return
	}
	if d := time.Duration(c.wTimeout.Load()); d > 0 {
		c.d.SetWriteDeadline(c.clock().Now().Add(d))
	}
}

// SetMetrics attaches frame-level counters to the conn (nil detaches).
// Set it before the conn carries traffic; the counters themselves are
// concurrency-safe, so one ConnMetrics may be shared by many conns to
// aggregate per component (e.g. per datanode).
func (c *Conn) SetMetrics(m *obs.ConnMetrics) { c.metrics = m }

// Close closes the underlying stream if it is closable.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// Flush forces buffered writes onto the wire.
func (c *Conn) Flush() error { return c.flushPending() }

// SetCork toggles corked output. While corked, data packets are not
// flushed per frame: small frames accumulate and reach the wire when the
// adaptive thresholds fire (see SetAutoCork), when a Last packet is
// written, or on an explicit Flush. Large packet payloads always flush —
// they are borrowed zero-copy and must not outlive WritePacket — so the
// cork only ever delays cheap-to-buffer control-sized frames. Headers
// and acks always flush eagerly regardless: they are latency-sensitive
// control traffic (pipeline setup, per-packet acks, the FNFA) that must
// never sit behind a cork. Uncorking flushes whatever is pending.
//
// Like writes themselves, SetCork belongs to the Conn's single writing
// goroutine.
func (c *Conn) SetCork(on bool) error {
	c.corked = on
	if !on {
		return c.flushPending()
	}
	return nil
}

// SetAutoCork tunes the corked flush policy: a corked conn flushes once
// at least bytes are pending (0 selects the 128 KiB default), or — when
// delay > 0 — once the oldest pending frame has waited delay, whichever
// comes first. The age check piggybacks on writeFrame (the conn has no
// timer goroutine), so delay is a bound on added latency per burst, not
// a standalone flush tick. Belongs to the writing goroutine, like
// SetCork.
func (c *Conn) SetAutoCork(bytes int, delay time.Duration) {
	c.corkBytes = bytes
	c.corkDelay = delay
}

// corkDue reports whether the corked backlog must flush now (size or age
// threshold crossed), maintaining the age stamp.
func (c *Conn) corkDue() bool {
	limit := c.corkBytes
	if limit <= 0 {
		limit = defaultCorkBytes
	}
	if c.fw.pending >= limit {
		return true
	}
	if c.corkDelay > 0 {
		now := c.clock().Now()
		if c.corkFirst.IsZero() {
			c.corkFirst = now
		} else if now.Sub(c.corkFirst) >= c.corkDelay {
			return true
		}
	}
	return false
}

// flushPending arms the write deadline and pushes every pending span to
// the wire in one gather write.
func (c *Conn) flushPending() error {
	if c.fw.pending == 0 && len(c.fw.spans) == 0 {
		return nil
	}
	c.armWrite()
	c.corkFirst = time.Time{}
	return c.fw.flush()
}

// writeFrame stages one length-prefixed frame whose payload is the
// concatenation of head and tail (either may be empty). head is copied
// into the staging buffer; a tail of borrowMin or more rides as its own
// write vector straight from the caller's buffer, never memcpy'd, at the
// cost of an immediate flush (the caller owns tail again when we
// return). flush=false leaves small frames pending (corked packet
// traffic) unless the adaptive cork thresholds say otherwise.
func (c *Conn) writeFrame(head, tail []byte, flush bool) error {
	n := len(head) + len(tail)
	if n > MaxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	binary.BigEndian.PutUint32(c.whdr[:], uint32(n))
	c.fw.stageBytes(c.whdr[:])
	c.fw.stageBytes(head)
	borrowed := len(tail) >= borrowMin
	if borrowed {
		c.fw.borrow(tail)
	} else {
		c.fw.stageBytes(tail)
	}
	if m := c.metrics; m != nil {
		m.FramesOut.Inc()
		m.BytesOut.Add(int64(4 + n))
	}
	if !flush && !borrowed && !c.corkDue() {
		if m := c.metrics; m != nil {
			m.CorkedFrames.Inc()
		}
		return nil
	}
	if m := c.metrics; m != nil {
		m.Flushes.Inc()
	}
	return c.flushPending()
}

// readBody scatter-fills dst with the current frame's body: buffered
// bytes drain first, then large remainders read straight from the
// underlying stream into dst (one copy, no bufio detour). EOF after the
// frame prefix is torn-frame corruption, surfaced as ErrUnexpectedEOF
// once any body byte arrived (matching io.ReadFull).
func (c *Conn) readBody(dst []byte) error {
	got := 0
	for got < len(dst) {
		if b := c.r.Buffered(); b > 0 {
			m := len(dst) - got
			if m > b {
				m = b
			}
			k, err := c.r.Read(dst[got : got+m])
			got += k
			if err != nil {
				return err
			}
			continue
		}
		rest := dst[got:]
		if len(rest) >= directReadMin {
			k, err := c.raw.Read(rest)
			got += k
			if err != nil {
				if err == io.EOF && got > 0 {
					err = io.ErrUnexpectedEOF
				}
				return err
			}
			continue
		}
		k, err := io.ReadFull(c.r, rest)
		got += k
		if err != nil {
			if err == io.EOF && got > 0 {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// readFrame reads one length-prefixed frame into a pooled buffer. The
// caller owns the returned buffer and must hand it back via
// bufpool.Put (or transfer it into a Packet, whose Release does so).
func (c *Conn) readFrame() (*[]byte, error) {
	c.armRead()
	if _, err := io.ReadFull(c.r, c.rhdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(c.rhdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("proto: incoming frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	fr := bufpool.Get(int(n))
	if err := c.readBody(*fr); err != nil {
		bufpool.Put(fr)
		return nil, err
	}
	if m := c.metrics; m != nil {
		m.FramesIn.Inc()
		m.BytesIn.Add(int64(4 + n))
	}
	return fr, nil
}

// --- primitive append/consume helpers ---

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func consumeString(src []byte) (string, []byte, error) {
	if len(src) < 2 {
		return "", nil, io.ErrUnexpectedEOF
	}
	n := int(binary.BigEndian.Uint16(src))
	src = src[2:]
	if len(src) < n {
		return "", nil, io.ErrUnexpectedEOF
	}
	return string(src[:n]), src[n:], nil
}

func appendBlock(dst []byte, b block.Block) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(b.ID))
	dst = binary.BigEndian.AppendUint64(dst, uint64(b.Gen))
	dst = binary.BigEndian.AppendUint64(dst, uint64(b.NumBytes))
	return dst
}

func consumeBlock(src []byte) (block.Block, []byte, error) {
	if len(src) < 24 {
		return block.Block{}, nil, io.ErrUnexpectedEOF
	}
	b := block.Block{
		ID:       block.ID(binary.BigEndian.Uint64(src)),
		Gen:      block.GenStamp(binary.BigEndian.Uint64(src[8:])),
		NumBytes: int64(binary.BigEndian.Uint64(src[16:])),
	}
	return b, src[24:], nil
}

func appendDatanode(dst []byte, d block.DatanodeInfo) []byte {
	dst = appendString(dst, d.Name)
	dst = appendString(dst, d.Addr)
	return appendString(dst, d.Rack)
}

func consumeDatanode(src []byte) (block.DatanodeInfo, []byte, error) {
	var d block.DatanodeInfo
	var err error
	if d.Name, src, err = consumeString(src); err != nil {
		return d, nil, err
	}
	if d.Addr, src, err = consumeString(src); err != nil {
		return d, nil, err
	}
	if d.Rack, src, err = consumeString(src); err != nil {
		return d, nil, err
	}
	return d, src, nil
}

// --- operation headers ---

// WriteHeader sends an operation header frame: version, op, payload.
// Headers always flush — they open a pipeline and the peer is waiting.
func (c *Conn) WriteHeader(op Op, h any) error {
	// Pre-size the encode scratch so headers with long target lists never
	// grow mid-append; the buffer itself is pooled.
	need := 2 + 24 + 5 + 8 + 2 + 16
	if wh, ok := h.(*WriteBlockHeader); ok {
		need += len(wh.Client)
		for _, t := range wh.Targets {
			need += 6 + len(t.Name) + len(t.Addr) + len(t.Rack)
		}
	}
	bp := bufpool.GetCap(need)
	defer bufpool.Put(bp)
	buf := append(*bp, Version, byte(op))
	switch op {
	case OpWriteBlock:
		wh, ok := h.(*WriteBlockHeader)
		if !ok {
			return fmt.Errorf("proto: WriteHeader(%v) needs *WriteBlockHeader, got %T", op, h)
		}
		buf = appendBlock(buf, wh.Block)
		buf = append(buf, byte(wh.Mode), wh.Depth, wh.Stripes, wh.StripeID, wh.Fanout)
		buf = binary.BigEndian.AppendUint64(buf, uint64(wh.BlockBytes))
		buf = appendString(buf, wh.Client)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(wh.Targets)))
		for _, t := range wh.Targets {
			buf = appendDatanode(buf, t)
		}
	case OpReadBlock:
		rh, ok := h.(*ReadBlockHeader)
		if !ok {
			return fmt.Errorf("proto: WriteHeader(%v) needs *ReadBlockHeader, got %T", op, h)
		}
		buf = appendBlock(buf, rh.Block)
		buf = binary.BigEndian.AppendUint64(buf, uint64(rh.Offset))
		buf = binary.BigEndian.AppendUint64(buf, uint64(rh.Length))
	default:
		return fmt.Errorf("proto: unknown op %v", op)
	}
	*bp = buf
	return c.writeFrame(buf, nil, true)
}

// ReadHeader reads an operation header frame and returns the op plus the
// decoded header (*WriteBlockHeader or *ReadBlockHeader).
func (c *Conn) ReadHeader() (Op, any, error) {
	fr, err := c.readFrame()
	if err != nil {
		return 0, nil, err
	}
	defer bufpool.Put(fr)
	buf := *fr
	if len(buf) < 2 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if buf[0] != Version {
		return 0, nil, fmt.Errorf("proto: version %d, want %d", buf[0], Version)
	}
	op := Op(buf[1])
	rest := buf[2:]
	switch op {
	case OpWriteBlock:
		var wh WriteBlockHeader
		if wh.Block, rest, err = consumeBlock(rest); err != nil {
			return op, nil, err
		}
		if len(rest) < 5 {
			return op, nil, io.ErrUnexpectedEOF
		}
		wh.Mode = WriteMode(rest[0])
		wh.Depth = rest[1]
		wh.Stripes = rest[2]
		wh.StripeID = rest[3]
		wh.Fanout = rest[4]
		rest = rest[5:]
		if wh.Stripes > MaxStripes {
			return op, nil, fmt.Errorf("proto: %d stripes exceeds max %d", wh.Stripes, MaxStripes)
		}
		if wh.Stripes > 1 && wh.StripeID >= wh.Stripes {
			return op, nil, fmt.Errorf("proto: stripe id %d out of range for %d stripes", wh.StripeID, wh.Stripes)
		}
		if wh.Fanout != 0 && wh.Stripes > 1 {
			return op, nil, fmt.Errorf("proto: fanout cannot combine with %d stripes", wh.Stripes)
		}
		if len(rest) < 8 {
			return op, nil, io.ErrUnexpectedEOF
		}
		wh.BlockBytes = int64(binary.BigEndian.Uint64(rest))
		rest = rest[8:]
		if wh.BlockBytes < 0 {
			return op, nil, fmt.Errorf("proto: negative block size hint %d", wh.BlockBytes)
		}
		if wh.Client, rest, err = consumeString(rest); err != nil {
			return op, nil, err
		}
		if len(rest) < 2 {
			return op, nil, io.ErrUnexpectedEOF
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		wh.Targets = make([]block.DatanodeInfo, n)
		for i := 0; i < n; i++ {
			if wh.Targets[i], rest, err = consumeDatanode(rest); err != nil {
				return op, nil, err
			}
		}
		return op, &wh, nil
	case OpReadBlock:
		var rh ReadBlockHeader
		if rh.Block, rest, err = consumeBlock(rest); err != nil {
			return op, nil, err
		}
		if len(rest) < 16 {
			return op, nil, io.ErrUnexpectedEOF
		}
		rh.Offset = int64(binary.BigEndian.Uint64(rest))
		rh.Length = int64(binary.BigEndian.Uint64(rest[8:]))
		return op, &rh, nil
	default:
		return op, nil, fmt.Errorf("proto: unknown op byte 0x%02x", byte(op))
	}
}

// --- packets ---

// WritePacket frames and sends a data packet. Only the packet header and
// checksums pass through a (pooled) scratch buffer; p.Data rides as its
// own write vector, so the payload is never copied into a frame — one
// writev moves header, checksums, and payload together on streams with
// gather support. When both RawSums and Sums are set, RawSums wins — a
// forwarding datanode re-emits the wire bytes it received without
// re-encoding. The frame is flushed unless the Conn is corked; a Last
// packet always flushes (the peer is about to commit the block on it),
// and so does any packet whose payload is borrowed rather than staged.
func (c *Conn) WritePacket(p *Packet) error {
	sumBytes := len(p.RawSums)
	nSums := sumBytes / checksum.BytesPerChecksum
	if p.RawSums == nil {
		nSums = len(p.Sums)
		sumBytes = nSums * checksum.BytesPerChecksum
	}
	bp := bufpool.GetCap(25 + sumBytes)
	defer bufpool.Put(bp)
	buf := *bp
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.Seqno))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.Offset))
	var flags byte
	if p.Last {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(nSums))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Data)))
	if p.RawSums != nil {
		buf = append(buf, p.RawSums...)
	} else {
		buf = checksum.Encode(buf, p.Sums)
	}
	*bp = buf
	return c.writeFrame(buf, p.Data, !c.corked || p.Last)
}

// ReadPacket reads one data packet into a pooled Packet whose Data and
// RawSums alias a pooled frame buffer. The caller owns the packet and
// must Release it exactly once; see the Packet ownership contract.
// Checksums are not decoded — verify with checksum.VerifyEncoded
// against RawSums, or decode explicitly with DecodedSums.
func (c *Conn) ReadPacket() (*Packet, error) {
	fr, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	buf := *fr
	if len(buf) < 25 {
		bufpool.Put(fr)
		return nil, io.ErrUnexpectedEOF
	}
	nSums := int(binary.BigEndian.Uint32(buf[17:]))
	nData := int(binary.BigEndian.Uint32(buf[21:]))
	rest := buf[25:]
	sumBytes := nSums * checksum.BytesPerChecksum
	if nSums > MaxFrame/checksum.BytesPerChecksum || len(rest) != sumBytes+nData {
		bufpool.Put(fr)
		return nil, fmt.Errorf("proto: packet body %d bytes, want %d sums + %d data", len(rest), nSums, nData)
	}
	p := packetPool.Get().(*Packet)
	*p = Packet{
		Seqno:   int64(binary.BigEndian.Uint64(buf)),
		Offset:  int64(binary.BigEndian.Uint64(buf[8:])),
		Last:    buf[16]&1 != 0,
		RawSums: rest[:sumBytes],
		Data:    rest[sumBytes:],
		frame:   fr,
		pooled:  true,
	}
	return p, nil
}

// --- acks ---

// WriteAck frames and sends a pipeline ack. Acks always flush: they are
// the latency-critical reverse traffic (per-packet acks and the FNFA)
// that corked data must never delay.
func (c *Conn) WriteAck(a *Ack) error {
	bp := bufpool.GetCap(11 + len(a.Statuses))
	defer bufpool.Put(bp)
	buf := *bp
	buf = append(buf, byte(a.Kind))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.Seqno))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(a.Statuses)))
	for _, s := range a.Statuses {
		buf = append(buf, byte(s))
	}
	*bp = buf
	return c.writeFrame(buf, nil, true)
}

// ReadAck reads one pipeline ack. The returned *Ack is owned by the
// Conn and valid only until the next ReadAck on this Conn; callers that
// retain it (or its Statuses) must copy.
func (c *Conn) ReadAck() (*Ack, error) {
	fr, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	defer bufpool.Put(fr)
	buf := *fr
	if len(buf) < 11 {
		return nil, io.ErrUnexpectedEOF
	}
	n := int(binary.BigEndian.Uint16(buf[9:]))
	if len(buf) != 11+n {
		return nil, fmt.Errorf("proto: ack body %d bytes, want %d statuses", len(buf)-11, n)
	}
	if cap(c.ackStatuses) < n {
		c.ackStatuses = make([]Status, n)
	}
	sts := c.ackStatuses[:n]
	for i := 0; i < n; i++ {
		sts[i] = Status(buf[11+i])
	}
	c.ack = Ack{
		Kind:     AckKind(buf[0]),
		Seqno:    int64(binary.BigEndian.Uint64(buf[1:])),
		Statuses: sts,
	}
	return &c.ack, nil
}
