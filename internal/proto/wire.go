package proto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/checksum"
	"repro/internal/clock"
)

// deadlineSetter is the subset of net.Conn deadline control that
// transport conns implement; streams without it simply don't support
// timeouts (SetReadTimeout/SetWriteTimeout become no-ops).
type deadlineSetter interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// Conn wraps a stream with buffered, frame-oriented message I/O. It is
// safe for one concurrent reader and one concurrent writer, which matches
// pipeline usage (packets flow one way, acks the other on a second Conn).
type Conn struct {
	r *bufio.Reader
	w *bufio.Writer
	c io.Closer
	d deadlineSetter

	mu       sync.Mutex
	clk      clock.Clock
	rTimeout time.Duration
	wTimeout time.Duration
}

// NewConn wraps rw. If rw is an io.Closer, Close closes it; if it
// supports deadlines, per-operation timeouts become available.
func NewConn(rw io.ReadWriter) *Conn {
	c, _ := rw.(io.Closer)
	d, _ := rw.(deadlineSetter)
	return &Conn{
		r:   bufio.NewReaderSize(rw, 128<<10),
		w:   bufio.NewWriterSize(rw, 128<<10),
		c:   c,
		d:   d,
		clk: clock.System,
	}
}

// SetClock replaces the clock used to compute operation deadlines (for
// virtual-time runs). nil restores the system clock.
func (c *Conn) SetClock(clk clock.Clock) {
	if clk == nil {
		clk = clock.System
	}
	c.mu.Lock()
	c.clk = clk
	c.mu.Unlock()
}

// SetReadTimeout bounds each subsequent frame read (header, packet or
// ack): the deadline is re-armed per operation, so it is a progress
// timeout, not a whole-stream budget. d <= 0 disables the bound. No-op
// if the underlying stream has no deadline support.
func (c *Conn) SetReadTimeout(d time.Duration) {
	if c.d == nil {
		return
	}
	c.mu.Lock()
	c.rTimeout = d
	c.mu.Unlock()
	if d <= 0 {
		c.d.SetReadDeadline(time.Time{})
	}
}

// SetWriteTimeout bounds each subsequent frame write. d <= 0 disables
// the bound. No-op if the underlying stream has no deadline support.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	if c.d == nil {
		return
	}
	c.mu.Lock()
	c.wTimeout = d
	c.mu.Unlock()
	if d <= 0 {
		c.d.SetWriteDeadline(time.Time{})
	}
}

// armRead applies the per-operation read deadline, if any.
func (c *Conn) armRead() {
	if c.d == nil {
		return
	}
	c.mu.Lock()
	d, clk := c.rTimeout, c.clk
	c.mu.Unlock()
	if d > 0 {
		c.d.SetReadDeadline(clk.Now().Add(d))
	}
}

// armWrite applies the per-operation write deadline, if any.
func (c *Conn) armWrite() {
	if c.d == nil {
		return
	}
	c.mu.Lock()
	d, clk := c.wTimeout, c.clk
	c.mu.Unlock()
	if d > 0 {
		c.d.SetWriteDeadline(clk.Now().Add(d))
	}
}

// Close closes the underlying stream if it is closable.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// Flush forces buffered writes onto the wire.
func (c *Conn) Flush() error { return c.w.Flush() }

// writeFrame emits a length-prefixed frame and flushes.
func (c *Conn) writeFrame(payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds max %d", len(payload), MaxFrame)
	}
	c.armWrite()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// readFrame reads one length-prefixed frame.
func (c *Conn) readFrame() ([]byte, error) {
	c.armRead()
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("proto: incoming frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// --- primitive append/consume helpers ---

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func consumeString(src []byte) (string, []byte, error) {
	if len(src) < 2 {
		return "", nil, io.ErrUnexpectedEOF
	}
	n := int(binary.BigEndian.Uint16(src))
	src = src[2:]
	if len(src) < n {
		return "", nil, io.ErrUnexpectedEOF
	}
	return string(src[:n]), src[n:], nil
}

func appendBlock(dst []byte, b block.Block) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(b.ID))
	dst = binary.BigEndian.AppendUint64(dst, uint64(b.Gen))
	dst = binary.BigEndian.AppendUint64(dst, uint64(b.NumBytes))
	return dst
}

func consumeBlock(src []byte) (block.Block, []byte, error) {
	if len(src) < 24 {
		return block.Block{}, nil, io.ErrUnexpectedEOF
	}
	b := block.Block{
		ID:       block.ID(binary.BigEndian.Uint64(src)),
		Gen:      block.GenStamp(binary.BigEndian.Uint64(src[8:])),
		NumBytes: int64(binary.BigEndian.Uint64(src[16:])),
	}
	return b, src[24:], nil
}

func appendDatanode(dst []byte, d block.DatanodeInfo) []byte {
	dst = appendString(dst, d.Name)
	dst = appendString(dst, d.Addr)
	return appendString(dst, d.Rack)
}

func consumeDatanode(src []byte) (block.DatanodeInfo, []byte, error) {
	var d block.DatanodeInfo
	var err error
	if d.Name, src, err = consumeString(src); err != nil {
		return d, nil, err
	}
	if d.Addr, src, err = consumeString(src); err != nil {
		return d, nil, err
	}
	if d.Rack, src, err = consumeString(src); err != nil {
		return d, nil, err
	}
	return d, src, nil
}

// --- operation headers ---

// WriteHeader sends an operation header frame: version, op, payload.
func (c *Conn) WriteHeader(op Op, h any) error {
	buf := []byte{Version, byte(op)}
	switch op {
	case OpWriteBlock:
		wh, ok := h.(*WriteBlockHeader)
		if !ok {
			return fmt.Errorf("proto: WriteHeader(%v) needs *WriteBlockHeader, got %T", op, h)
		}
		buf = appendBlock(buf, wh.Block)
		buf = append(buf, byte(wh.Mode), wh.Depth)
		buf = appendString(buf, wh.Client)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(wh.Targets)))
		for _, t := range wh.Targets {
			buf = appendDatanode(buf, t)
		}
	case OpReadBlock:
		rh, ok := h.(*ReadBlockHeader)
		if !ok {
			return fmt.Errorf("proto: WriteHeader(%v) needs *ReadBlockHeader, got %T", op, h)
		}
		buf = appendBlock(buf, rh.Block)
		buf = binary.BigEndian.AppendUint64(buf, uint64(rh.Offset))
		buf = binary.BigEndian.AppendUint64(buf, uint64(rh.Length))
	default:
		return fmt.Errorf("proto: unknown op %v", op)
	}
	return c.writeFrame(buf)
}

// ReadHeader reads an operation header frame and returns the op plus the
// decoded header (*WriteBlockHeader or *ReadBlockHeader).
func (c *Conn) ReadHeader() (Op, any, error) {
	buf, err := c.readFrame()
	if err != nil {
		return 0, nil, err
	}
	if len(buf) < 2 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if buf[0] != Version {
		return 0, nil, fmt.Errorf("proto: version %d, want %d", buf[0], Version)
	}
	op := Op(buf[1])
	rest := buf[2:]
	switch op {
	case OpWriteBlock:
		var wh WriteBlockHeader
		if wh.Block, rest, err = consumeBlock(rest); err != nil {
			return op, nil, err
		}
		if len(rest) < 2 {
			return op, nil, io.ErrUnexpectedEOF
		}
		wh.Mode = WriteMode(rest[0])
		wh.Depth = rest[1]
		rest = rest[2:]
		if wh.Client, rest, err = consumeString(rest); err != nil {
			return op, nil, err
		}
		if len(rest) < 2 {
			return op, nil, io.ErrUnexpectedEOF
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		wh.Targets = make([]block.DatanodeInfo, n)
		for i := 0; i < n; i++ {
			if wh.Targets[i], rest, err = consumeDatanode(rest); err != nil {
				return op, nil, err
			}
		}
		return op, &wh, nil
	case OpReadBlock:
		var rh ReadBlockHeader
		if rh.Block, rest, err = consumeBlock(rest); err != nil {
			return op, nil, err
		}
		if len(rest) < 16 {
			return op, nil, io.ErrUnexpectedEOF
		}
		rh.Offset = int64(binary.BigEndian.Uint64(rest))
		rh.Length = int64(binary.BigEndian.Uint64(rest[8:]))
		return op, &rh, nil
	default:
		return op, nil, fmt.Errorf("proto: unknown op byte 0x%02x", byte(op))
	}
}

// --- packets ---

// WritePacket frames and sends a data packet.
func (c *Conn) WritePacket(p *Packet) error {
	need := 8 + 8 + 1 + 4 + 4 + len(p.Sums)*checksum.BytesPerChecksum + len(p.Data)
	buf := make([]byte, 0, need)
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.Seqno))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.Offset))
	var flags byte
	if p.Last {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Sums)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Data)))
	buf = checksum.Encode(buf, p.Sums)
	buf = append(buf, p.Data...)
	return c.writeFrame(buf)
}

// ReadPacket reads one data packet.
func (c *Conn) ReadPacket() (*Packet, error) {
	buf, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	if len(buf) < 25 {
		return nil, io.ErrUnexpectedEOF
	}
	p := &Packet{
		Seqno:  int64(binary.BigEndian.Uint64(buf)),
		Offset: int64(binary.BigEndian.Uint64(buf[8:])),
		Last:   buf[16]&1 != 0,
	}
	nSums := int(binary.BigEndian.Uint32(buf[17:]))
	nData := int(binary.BigEndian.Uint32(buf[21:]))
	rest := buf[25:]
	sumBytes := nSums * checksum.BytesPerChecksum
	if len(rest) != sumBytes+nData {
		return nil, fmt.Errorf("proto: packet body %d bytes, want %d sums + %d data", len(rest), sumBytes, nData)
	}
	if p.Sums, err = checksum.Decode(rest[:sumBytes]); err != nil {
		return nil, err
	}
	p.Data = rest[sumBytes:]
	return p, nil
}

// --- acks ---

// WriteAck frames and sends a pipeline ack.
func (c *Conn) WriteAck(a *Ack) error {
	buf := make([]byte, 0, 16+len(a.Statuses))
	buf = append(buf, byte(a.Kind))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.Seqno))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(a.Statuses)))
	for _, s := range a.Statuses {
		buf = append(buf, byte(s))
	}
	return c.writeFrame(buf)
}

// ReadAck reads one pipeline ack.
func (c *Conn) ReadAck() (*Ack, error) {
	buf, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	if len(buf) < 11 {
		return nil, io.ErrUnexpectedEOF
	}
	a := &Ack{
		Kind:  AckKind(buf[0]),
		Seqno: int64(binary.BigEndian.Uint64(buf[1:])),
	}
	n := int(binary.BigEndian.Uint16(buf[9:]))
	if len(buf) != 11+n {
		return nil, fmt.Errorf("proto: ack body %d bytes, want %d statuses", len(buf)-11, n)
	}
	a.Statuses = make([]Status, n)
	for i := 0; i < n; i++ {
		a.Statuses[i] = Status(buf[11+i])
	}
	return a, nil
}
