package proto

import "time"

// PacketWriter is the send half of a block data stream: one framed conn,
// or a StripeSet fanning packets over several. Both ends of a pipeline
// hop write through this interface so striping stays invisible to the
// packet loop.
type PacketWriter interface {
	WritePacket(*Packet) error
	SetCork(on bool) error
	SetAutoCork(bytes int, delay time.Duration)
	Flush() error
	Close() error
}

var (
	_ PacketWriter = (*Conn)(nil)
	_ PacketWriter = (*StripeSet)(nil)
)

// StripeSet fans one block's packets out over N parallel conns to the
// same peer: packet seqno s rides conn s % N, and the receiver
// reassembles in seqno order. Conn 0 is the primary — the conn that
// carried the StripeID-0 header and the only one carrying acks back —
// so ReadAck-side traffic keeps using Primary() directly.
//
// Like Conn's write half, a StripeSet belongs to a single writing
// goroutine.
type StripeSet struct {
	conns []*Conn
}

// NewStripeSet builds a striped writer over conns; conns[0] is the
// primary. At least one conn is required.
func NewStripeSet(conns ...*Conn) *StripeSet {
	if len(conns) == 0 {
		panic("proto: NewStripeSet needs at least one conn")
	}
	return &StripeSet{conns: conns}
}

// Primary returns the stripe-0 conn (header, acks, FNFA).
func (s *StripeSet) Primary() *Conn { return s.conns[0] }

// Stripes returns the stripe count.
func (s *StripeSet) Stripes() int { return len(s.conns) }

// WritePacket sends p on its stripe. The receiver can only finish the
// block after every earlier seqno arrived, so a Last packet first
// flushes the other stripes — nothing corked may outlive the block.
func (s *StripeSet) WritePacket(p *Packet) error {
	i := int(p.Seqno % int64(len(s.conns)))
	if i < 0 {
		i += len(s.conns)
	}
	if p.Last {
		for j, c := range s.conns {
			if j == i {
				continue
			}
			if err := c.Flush(); err != nil {
				return err
			}
		}
	}
	return s.conns[i].WritePacket(p)
}

// SetCork corks (or uncorks, flushing) every stripe.
func (s *StripeSet) SetCork(on bool) error {
	var first error
	for _, c := range s.conns {
		if err := c.SetCork(on); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetAutoCork tunes the adaptive cork thresholds on every stripe.
func (s *StripeSet) SetAutoCork(bytes int, delay time.Duration) {
	for _, c := range s.conns {
		c.SetAutoCork(bytes, delay)
	}
}

// Flush pushes pending bytes on every stripe.
func (s *StripeSet) Flush() error {
	var first error
	for _, c := range s.conns {
		if err := c.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetWriteTimeout bounds each frame write on every stripe.
func (s *StripeSet) SetWriteTimeout(d time.Duration) {
	for _, c := range s.conns {
		c.SetWriteTimeout(d)
	}
}

// Close closes every stripe conn, returning the first error.
func (s *StripeSet) Close() error {
	var first error
	for _, c := range s.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
