package proto

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/checksum"
	"repro/internal/clock"
)

// vecSink is a BuffersWriter-capable stream: the duck type the frame
// writer probes for writev support (net.TCPConn in production). It
// consumes the vector list the way net.Buffers.WriteTo does.
type vecSink struct {
	buf     bytes.Buffer
	writes  int // plain Write calls
	gathers int // WriteBuffers calls
	vecs    int // total vectors across all gathers
}

func (s *vecSink) Write(p []byte) (int, error) {
	s.writes++
	return s.buf.Write(p)
}

func (s *vecSink) Read(p []byte) (int, error) { return s.buf.Read(p) }

func (s *vecSink) WriteBuffers(bufs *net.Buffers) (int64, error) {
	s.gathers++
	var n int64
	for len(*bufs) > 0 {
		b := (*bufs)[0]
		*bufs = (*bufs)[1:]
		s.vecs++
		m, err := s.buf.Write(b)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// A full-size data packet on a gather-capable stream must go out as one
// vectored write — header+checksums staged, payload borrowed — with no
// sequential Write fallback and no payload copy into the stage.
func TestVectoredWriteUsesGather(t *testing.T) {
	data := make([]byte, DefaultPacketSize)
	for i := range data {
		data[i] = byte(i * 3)
	}
	sums := checksum.Sum(data, DefaultChunkSize)
	var sink vecSink
	c := NewConn(&sink)
	if err := c.WritePacket(&Packet{Seqno: 7, Sums: sums, Data: data, Last: true}); err != nil {
		t.Fatal(err)
	}
	if sink.gathers != 1 || sink.writes != 0 {
		t.Fatalf("full-size packet: %d gathers + %d plain writes, want 1 + 0", sink.gathers, sink.writes)
	}
	if sink.vecs != 2 {
		t.Fatalf("gather carried %d vectors, want 2 (staged header+sums, borrowed payload)", sink.vecs)
	}

	r := NewConn(&sink.buf)
	p, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if p.Seqno != 7 || !p.Last || !bytes.Equal(p.Data, data) {
		t.Fatalf("vectored frame corrupted: seqno=%d last=%v", p.Seqno, p.Last)
	}
	if err := checksum.VerifyEncoded(p.Data, p.RawSums, DefaultChunkSize); err != nil {
		t.Fatal(err)
	}
}

// Corked small frames coalesce in the stage and still leave as a single
// flush on the gather stream; the payload bytes must arrive intact.
func TestVectoredCorkedSmallFrames(t *testing.T) {
	small := make([]byte, 512)
	for i := range small {
		small[i] = byte(i)
	}
	sums := checksum.Sum(small, DefaultChunkSize)
	var sink vecSink
	c := NewConn(&sink)
	if err := c.SetCork(true); err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if err := c.WritePacket(&Packet{Seqno: int64(i), Sums: sums, Data: small}); err != nil {
			t.Fatal(err)
		}
	}
	if sink.gathers != 0 && sink.writes != 0 {
		t.Fatalf("corked small frames hit the transport early: %d gathers, %d writes", sink.gathers, sink.writes)
	}
	if err := c.SetCork(false); err != nil {
		t.Fatal(err)
	}
	// Contiguous staged frames merge into one span: a single plain
	// Write, not a gather of one vector.
	if total := sink.gathers + sink.writes; total != 1 {
		t.Fatalf("uncork flushed in %d transport ops (%d gathers, %d writes), want 1",
			total, sink.gathers, sink.writes)
	}
	r := NewConn(&sink.buf)
	for i := 0; i < n; i++ {
		p, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if p.Seqno != int64(i) || !bytes.Equal(p.Data, small) {
			t.Fatalf("packet %d corrupted after corked gather flush", i)
		}
		p.Release()
	}
}

// The writev path must stay allocation-free at steady state, corked and
// uncorked: the vector scratch, the stage, and the span list are all
// owned by the conn and reused across frames.
func TestVectoredWritePacketAllocs(t *testing.T) {
	skipUnderRace(t)
	data := make([]byte, DefaultPacketSize)
	sums := checksum.Sum(data, DefaultChunkSize)
	var sink vecSink
	c := NewConn(&sink)
	pkt := &Packet{Sums: sums, Data: data}

	avg := testing.AllocsPerRun(200, func() {
		sink.buf.Reset()
		if err := c.WritePacket(pkt); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("uncorked vectored WritePacket allocates %.1f times per packet, want 0", avg)
	}

	if err := c.SetCork(true); err != nil {
		t.Fatal(err)
	}
	avg = testing.AllocsPerRun(200, func() {
		sink.buf.Reset()
		if err := c.WritePacket(pkt); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("corked vectored WritePacket allocates %.1f times per packet, want 0", avg)
	}

	// Small corked packets exercise the stage-copy path instead of the
	// borrow path; the stage itself must also reach a steady size.
	smallData := make([]byte, 256)
	smallSums := checksum.Sum(smallData, DefaultChunkSize)
	smallPkt := &Packet{Sums: smallSums, Data: smallData}
	avg = testing.AllocsPerRun(200, func() {
		sink.buf.Reset()
		if err := c.WritePacket(smallPkt); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("corked small WritePacket allocates %.1f times per packet, want 0", avg)
	}
}

// The size half of the adaptive cork: once pending staged bytes cross
// the threshold the conn flushes on its own, without an uncork.
func TestAdaptiveCorkSizeThreshold(t *testing.T) {
	small := make([]byte, 256)
	sums := checksum.Sum(small, DefaultChunkSize)
	var sink vecSink
	c := NewConn(&sink)
	c.SetAutoCork(1024, 0) // ~3 staged frames of this size
	if err := c.SetCork(true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := c.WritePacket(&Packet{Seqno: int64(i), Sums: sums, Data: small}); err != nil {
			t.Fatal(err)
		}
	}
	if sink.buf.Len() == 0 {
		t.Fatal("no auto-flush: 16 frames staged past a 1 KB cork threshold")
	}
	flushed := sink.gathers + sink.writes
	if flushed >= 16 {
		t.Fatalf("auto-cork did not coalesce: %d transport ops for 16 frames", flushed)
	}
}

// The latency half of the adaptive cork: a stale pending frame forces a
// flush on the next write even when the size threshold is far away.
func TestAdaptiveCorkDelayThreshold(t *testing.T) {
	small := make([]byte, 64)
	sums := checksum.Sum(small, DefaultChunkSize)
	var sink vecSink
	clk := clock.NewManual(time.Unix(0, 0))
	c := NewConn(&sink)
	c.SetClock(clk)
	c.SetAutoCork(1<<30, 10*time.Millisecond)
	if err := c.SetCork(true); err != nil {
		t.Fatal(err)
	}
	if err := c.WritePacket(&Packet{Seqno: 0, Sums: sums, Data: small}); err != nil {
		t.Fatal(err)
	}
	if sink.buf.Len() != 0 {
		t.Fatal("first small frame flushed despite a 1 GB cork threshold")
	}
	clk.Advance(20 * time.Millisecond)
	if err := c.WritePacket(&Packet{Seqno: 1, Sums: sums, Data: small}); err != nil {
		t.Fatal(err)
	}
	if sink.buf.Len() == 0 {
		t.Fatal("stale pending frame did not force a flush after the cork delay")
	}
}

// StripeSet routes packets by seqno, keeps acks on the primary, and
// flushes every stripe when the Last packet goes out.
func TestStripeSetRouting(t *testing.T) {
	data := make([]byte, 128)
	sums := checksum.Sum(data, DefaultChunkSize)
	var sinks [3]vecSink
	conns := make([]*Conn, 3)
	for i := range conns {
		conns[i] = NewConn(&sinks[i])
	}
	set := NewStripeSet(conns...)
	if set.Primary() != conns[0] || set.Stripes() != 3 {
		t.Fatalf("Primary/Stripes = %p/%d, want %p/3", set.Primary(), set.Stripes(), conns[0])
	}
	if err := set.SetCork(true); err != nil {
		t.Fatal(err)
	}
	const n = 7
	for i := 0; i < n; i++ {
		if err := set.WritePacket(&Packet{Seqno: int64(i), Last: i == n-1, Sums: sums, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	// Every stripe flushed by the Last packet, despite the cork
	// (checked before the readers below drain the sinks).
	for i := range sinks {
		if sinks[i].buf.Len() == 0 {
			t.Fatalf("stripe %d still corked after the Last packet", i)
		}
	}
	var got [3][]int64
	for i := range sinks {
		r := NewConn(&sinks[i].buf)
		for {
			p, err := r.ReadPacket()
			if err != nil {
				break
			}
			got[i] = append(got[i], p.Seqno)
			p.Release()
		}
	}
	for i := 0; i < n; i++ {
		stripe := i % 3
		found := false
		for _, s := range got[stripe] {
			if s == int64(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("seqno %d missing from stripe %d (got %v)", i, stripe, got)
		}
	}
}
