package proto

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/checksum"
	"repro/internal/obs"
)

// Allocation-regression bounds for the hot-path codecs. These run the
// steady state (pools warmed by the first iterations of AllocsPerRun)
// and fail if a change reintroduces per-packet garbage.

// skipUnderRace skips pool-dependent allocation counting when built with
// -race, which makes sync.Pool drop puts at random.
func skipUnderRace(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race (sync.Pool drops puts)")
	}
}

func TestWritePacketAllocs(t *testing.T) {
	skipUnderRace(t)
	data := make([]byte, DefaultPacketSize)
	sums := checksum.Sum(data, DefaultChunkSize)
	var buf duplex
	c := NewConn(&buf)
	pkt := &Packet{Sums: sums, Data: data}
	avg := testing.AllocsPerRun(200, func() {
		buf.Reset()
		if err := c.WritePacket(pkt); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("WritePacket allocates %.1f times per packet, want 0", avg)
	}
}

func TestReadPacketAllocs(t *testing.T) {
	skipUnderRace(t)
	data := make([]byte, DefaultPacketSize)
	sums := checksum.Sum(data, DefaultChunkSize)
	var frame bytes.Buffer
	if err := NewConn(&frame).WritePacket(&Packet{Sums: sums, Data: data}); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()
	var buf duplex
	c := NewConn(&buf)
	avg := testing.AllocsPerRun(200, func() {
		buf.Write(raw)
		p, err := c.ReadPacket()
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
	})
	// Steady state reuses the pooled frame and packet struct; allow a
	// fractional average for pool misses under GC pressure.
	if avg > 0.5 {
		t.Fatalf("ReadPacket allocates %.1f times per packet, want ~0", avg)
	}
}

// TestPacketAllocsWithMetrics re-runs the packet codec bounds with
// frame-level ConnMetrics attached: the observability counters are plain
// atomics and must not cost a single allocation per packet.
func TestPacketAllocsWithMetrics(t *testing.T) {
	skipUnderRace(t)
	m := obs.NewConnMetrics(obs.NewRegistry().Component("conn"))
	data := make([]byte, DefaultPacketSize)
	sums := checksum.Sum(data, DefaultChunkSize)

	var out duplex
	w := NewConn(&out)
	w.SetMetrics(m)
	pkt := &Packet{Sums: sums, Data: data}
	avg := testing.AllocsPerRun(200, func() {
		out.Reset()
		if err := w.WritePacket(pkt); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("WritePacket with metrics allocates %.1f times per packet, want 0", avg)
	}

	var frame bytes.Buffer
	if err := NewConn(&frame).WritePacket(pkt); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()
	var in duplex
	r := NewConn(&in)
	r.SetMetrics(m)
	avg = testing.AllocsPerRun(200, func() {
		in.Write(raw)
		p, err := r.ReadPacket()
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
	})
	if avg > 0.5 {
		t.Fatalf("ReadPacket with metrics allocates %.1f times per packet, want ~0", avg)
	}

	if m.FramesOut.Load() == 0 || m.FramesIn.Load() == 0 || m.BytesIn.Load() == 0 || m.BytesOut.Load() == 0 {
		t.Fatalf("conn metrics did not move: in %d/%dB out %d/%dB",
			m.FramesIn.Load(), m.BytesIn.Load(), m.FramesOut.Load(), m.BytesOut.Load())
	}
}

func TestWriteAckAllocs(t *testing.T) {
	skipUnderRace(t)
	var buf duplex
	c := NewConn(&buf)
	a := &Ack{Kind: AckData, Seqno: 9, Statuses: []Status{StatusSuccess, StatusSuccess, StatusSuccess}}
	avg := testing.AllocsPerRun(200, func() {
		buf.Reset()
		if err := c.WriteAck(a); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("WriteAck allocates %.1f times per ack, want 0", avg)
	}
}

func TestReadAckAllocs(t *testing.T) {
	skipUnderRace(t)
	var frame bytes.Buffer
	in := &Ack{Kind: AckData, Seqno: 9, Statuses: []Status{StatusSuccess, StatusSuccess, StatusSuccess}}
	if err := NewConn(&frame).WriteAck(in); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()
	var buf duplex
	c := NewConn(&buf)
	if buf.Write(raw); true {
		if _, err := c.ReadAck(); err != nil { // warm the statuses scratch
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		buf.Write(raw)
		a, err := c.ReadAck()
		if err != nil {
			t.Fatal(err)
		}
		if !a.OK() {
			t.Fatal("bad ack")
		}
	})
	if avg > 0.5 {
		t.Fatalf("ReadAck allocates %.1f times per ack, want ~0", avg)
	}
}

func TestVerifyEncodedAllocs(t *testing.T) {
	data := make([]byte, DefaultPacketSize)
	raw := checksum.Encode(nil, checksum.Sum(data, DefaultChunkSize))
	avg := testing.AllocsPerRun(100, func() {
		if err := checksum.VerifyEncoded(data, raw, DefaultChunkSize); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("VerifyEncoded allocates %.1f times per call, want 0", avg)
	}
}

// flushCounter counts Write calls reaching the underlying transport —
// with bufio in between, each flush is at most one Write (plus extra
// writes only when a frame overflows the bufio buffer).
type flushCounter struct {
	bytes.Buffer
	writes int
}

func (f *flushCounter) Write(p []byte) (int, error) {
	f.writes++
	return f.Buffer.Write(p)
}

// Corked data packets must coalesce into few transport writes; the Last
// packet must flush even while corked, and acks must always flush.
func TestCorkCoalescesDataFlushes(t *testing.T) {
	small := make([]byte, 256) // far below the bufio buffer size
	sums := checksum.Sum(small, DefaultChunkSize)

	var plain flushCounter
	c := NewConn(&plain)
	for i := 0; i < 8; i++ {
		if err := c.WritePacket(&Packet{Seqno: int64(i), Sums: sums, Data: small}); err != nil {
			t.Fatal(err)
		}
	}
	if plain.writes < 8 {
		t.Fatalf("uncorked: %d transport writes for 8 packets, want >=8 (eager flush)", plain.writes)
	}

	var corked flushCounter
	c2 := NewConn(&corked)
	if err := c2.SetCork(true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c2.WritePacket(&Packet{Seqno: int64(i), Sums: sums, Data: small}); err != nil {
			t.Fatal(err)
		}
	}
	if corked.writes != 0 {
		t.Fatalf("corked: %d transport writes before uncork, want 0", corked.writes)
	}
	if err := c2.SetCork(false); err != nil {
		t.Fatal(err)
	}
	if corked.writes == 0 {
		t.Fatal("uncork did not flush")
	}

	// Last packet flushes despite the cork.
	var last flushCounter
	c3 := NewConn(&last)
	if err := c3.SetCork(true); err != nil {
		t.Fatal(err)
	}
	if err := c3.WritePacket(&Packet{Seqno: 0, Last: true, Sums: sums, Data: small}); err != nil {
		t.Fatal(err)
	}
	if last.writes == 0 {
		t.Fatal("Last packet did not flush through a corked conn")
	}

	// Acks flush despite the cork.
	var ack flushCounter
	c4 := NewConn(&ack)
	if err := c4.SetCork(true); err != nil {
		t.Fatal(err)
	}
	if err := c4.WriteAck(&Ack{Kind: AckData, Seqno: 1, Statuses: []Status{StatusSuccess}}); err != nil {
		t.Fatal(err)
	}
	if ack.writes == 0 {
		t.Fatal("ack did not flush through a corked conn")
	}
}

// Round-trip through the cork: everything written corked must arrive
// intact once the stream ends with a Last packet.
func TestCorkedStreamRoundTrip(t *testing.T) {
	var buf duplex
	w := NewConn(&buf)
	if err := w.SetCork(true); err != nil {
		t.Fatal(err)
	}
	const n = 5
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	sums := checksum.Sum(data, DefaultChunkSize)
	for i := 0; i < n; i++ {
		if err := w.WritePacket(&Packet{Seqno: int64(i), Offset: int64(i) * 4096, Last: i == n-1, Sums: sums, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	r := NewConn(&buf)
	for i := 0; i < n; i++ {
		p, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if p.Seqno != int64(i) || !bytes.Equal(p.Data, data) {
			t.Fatalf("packet %d corrupted", i)
		}
		if err := checksum.VerifyEncoded(p.Data, p.RawSums, DefaultChunkSize); err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	if _, err := r.ReadPacket(); err != io.EOF { //smarth:owns-packet — EOF expected, no packet allocated
		t.Fatalf("trailing read err = %v, want EOF", err)
	}
}

// Pooled packets must be safe to read, release, and re-acquire from
// many goroutines at once (exercised under -race in CI).
func TestPooledPacketConcurrentOwnership(t *testing.T) {
	data := make([]byte, 1024)
	sums := checksum.Sum(data, DefaultChunkSize)
	var frame bytes.Buffer
	if err := NewConn(&frame).WritePacket(&Packet{Seqno: 42, Sums: sums, Data: data}); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf duplex
			c := NewConn(&buf)
			for i := 0; i < 200; i++ {
				buf.Write(raw)
				p, err := c.ReadPacket()
				if err != nil {
					t.Error(err)
					return
				}
				if p.Seqno != 42 || len(p.Data) != len(data) {
					t.Errorf("packet corrupted after pool reuse: %+v", p)
					p.Release()
					return
				}
				// Hand the packet to another goroutine, as the datanode
				// receive loop hands packets to the forwarder.
				wg.Add(1)
				go func(p *Packet) {
					defer wg.Done()
					if err := checksum.VerifyEncoded(p.Data, p.RawSums, DefaultChunkSize); err != nil {
						t.Error(err)
					}
					p.Release()
				}(p)
			}
		}()
	}
	wg.Wait()
}
