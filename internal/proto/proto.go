// Package proto defines the data-transfer wire protocol spoken between
// clients and datanodes: operation headers (write-block, read-block),
// data packets carrying chunked checksums, and pipeline acks — including
// SMARTH's FIRST NODE FINISH ACK (FNFA), which the first datanode of a
// pipeline sends once it has received and stored an entire block.
//
// Framing is explicit and versioned: every message is a 4-byte big-endian
// length followed by the payload, so the protocol is usable over any
// stream transport (in-memory pipes, TCP).
package proto

import (
	"repro/internal/block"
	"repro/internal/checksum"
)

// Version is bumped on incompatible wire changes. Version 2 added the
// stripe fields to WriteBlockHeader; version 3 added the Fanout flag.
const Version = 3

// Default sizes match HDFS 1.x (§II of the paper): 64 MB blocks split
// into 64 KB packets, checksummed in 512 B chunks.
const (
	DefaultBlockSize  = 64 << 20
	DefaultPacketSize = 64 << 10
	DefaultChunkSize  = 512
)

// MaxFrame bounds a single wire frame; a packet of data plus checksums
// plus header fits comfortably.
const MaxFrame = 8 << 20

// MaxStripes bounds the parallel data connections one block may fan out
// over per pipeline hop. Past a small count the per-conn overhead beats
// the parallelism, and the receiver's reorder window grows with N.
const MaxStripes = 16

// Op identifies a data-transfer operation.
type Op uint8

const (
	// OpWriteBlock opens a write pipeline for one block.
	OpWriteBlock Op = 0x50
	// OpReadBlock streams a block (or a range of it) back to the client.
	OpReadBlock Op = 0x51
)

func (o Op) String() string {
	switch o {
	case OpWriteBlock:
		return "WRITE_BLOCK"
	case OpReadBlock:
		return "READ_BLOCK"
	default:
		return "UNKNOWN_OP"
	}
}

// WriteMode selects the acknowledgement discipline of a write pipeline.
type WriteMode uint8

const (
	// ModeHDFS is the baseline stop-and-wait protocol: the client waits
	// for every datanode's ack for every packet of a block before moving
	// to the next block.
	ModeHDFS WriteMode = 0
	// ModeSmarth enables the FNFA: the first datanode acknowledges the
	// whole block as soon as it is locally stored, letting the client
	// open the next pipeline immediately.
	ModeSmarth WriteMode = 1
)

func (m WriteMode) String() string {
	if m == ModeSmarth {
		return "SMARTH"
	}
	return "HDFS"
}

// Status is a per-datanode result carried inside acks.
type Status uint8

const (
	StatusSuccess Status = iota
	StatusError
	StatusErrorChecksum
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "SUCCESS"
	case StatusError:
		return "ERROR"
	case StatusErrorChecksum:
		return "ERROR_CHECKSUM"
	default:
		return "UNKNOWN_STATUS"
	}
}

// WriteBlockHeader starts a write pipeline. The receiving datanode stores
// the block and mirrors every packet to Targets[0], which mirrors to
// Targets[1], and so on.
type WriteBlockHeader struct {
	Block   block.Block
	Targets []block.DatanodeInfo // downstream datanodes, excluding the receiver
	Client  string               // client name, used for buffer accounting and speed records
	Mode    WriteMode
	// Depth is the receiver's position in the pipeline: 0 for the
	// datanode the client dialed (the only one that emits the FNFA in
	// SMARTH mode), incremented at each mirror hop.
	Depth uint8
	// Stripes is the number of parallel data connections carrying this
	// block over the hop (0 and 1 both mean a single conn). Packets are
	// distributed seqno % Stripes across the conns and reassembled in
	// seqno order by the receiver; acks and the FNFA travel only on the
	// stripe-0 conn.
	Stripes uint8
	// StripeID says which stripe this particular conn carries. Stripe 0
	// is the primary: it performs setup and teardown and owns the block's
	// session at the receiver. Conns with StripeID > 0 attach to the
	// session the primary registered (same block, generation, and client)
	// and carry data only.
	StripeID uint8
	// BlockBytes is the expected final length of the block (the writer's
	// configured block size), or 0 when unknown. It is a storage hint
	// only — receivers may use it to preallocate block buffers — and
	// never bounds how much data the pipeline actually accepts.
	BlockBytes int64
	// Fanout, when non-zero, asks the receiving datanode to mirror each
	// packet to every entry of Targets in parallel (replication offload;
	// the fanout policy's data plane) instead of chaining through
	// Targets[0]. Leaves receive Fanout 0 with no targets, so only the
	// dialed node fans out. Incompatible with striping: Fanout with
	// Stripes > 1 is rejected at decode.
	Fanout uint8
}

// ReadBlockHeader requests Length bytes of a block starting at Offset.
// Length < 0 means "to the end of the block".
type ReadBlockHeader struct {
	Block  block.Block
	Offset int64
	Length int64
}

// Packet is one unit of data transfer within a block.
//
// Ownership: a Packet returned by Conn.ReadPacket is pooled — its Data
// and RawSums alias a recycled frame buffer, and the receiver owns it
// until it calls Release (exactly once), after which every field is
// invalid. Ownership moves with the pointer: a datanode that enqueues a
// packet for its mirror transfers the release duty to the forwarder.
// Locally constructed packets (the send path) are plain values; Release
// on them is a no-op and WritePacket never retains any field.
type Packet struct {
	Seqno  int64 // sequence number within the block, starting at 0
	Offset int64 // offset of Data within the block
	Last   bool  // true on the final (possibly empty) packet of the block
	// Sums holds decoded per-chunk checksums on the send path. ReadPacket
	// leaves it nil and fills RawSums instead; decode explicitly with
	// DecodedSums when the uint32s are really needed.
	Sums []uint32
	// RawSums is the big-endian wire encoding of the checksums. On
	// received packets it aliases the pooled frame; verify against it
	// with checksum.VerifyEncoded. WritePacket prefers RawSums over Sums
	// when both are set, so forwarding never re-encodes.
	RawSums []byte
	Data    []byte

	// frame is the pooled buffer Data/RawSums alias; pooled marks a
	// packet struct that came from the packet pool (ReadPacket).
	frame  *[]byte
	pooled bool
}

// Release returns a packet obtained from ReadPacket (and its frame
// buffer) to the pools. It must be called exactly once per received
// packet, after which the packet and its Data/RawSums must not be
// touched. Safe no-op on locally constructed packets.
func (p *Packet) Release() {
	fr, pooled := p.frame, p.pooled
	if fr == nil && !pooled {
		return
	}
	*p = Packet{}
	releaseFrame(fr)
	if pooled {
		packetPool.Put(p)
	}
}

// DecodedSums returns the packet's checksums as uint32 values, decoding
// RawSums when Sums is unset. It allocates; the hot path verifies with
// checksum.VerifyEncoded instead.
func (p *Packet) DecodedSums() ([]uint32, error) {
	if p.Sums != nil || p.RawSums == nil {
		return p.Sums, nil
	}
	return checksum.Decode(p.RawSums)
}

// AckKind discriminates pipeline acks.
type AckKind uint8

const (
	// AckData acknowledges one packet. Statuses holds one entry per
	// pipeline datanode, closest-first.
	AckData AckKind = iota
	// AckFNFA is SMARTH's FIRST NODE FINISH ACK: the first datanode has
	// received and locally stored every packet of the block.
	AckFNFA
	// AckHeader acknowledges pipeline setup (success or failure of
	// connecting the downstream mirrors).
	AckHeader
)

func (k AckKind) String() string {
	switch k {
	case AckData:
		return "DATA"
	case AckFNFA:
		return "FNFA"
	case AckHeader:
		return "HEADER"
	default:
		return "UNKNOWN_ACK"
	}
}

// Ack travels the pipeline in reverse, from the last datanode back to the
// client. Each datanode prepends its own status.
//
// Ownership: the *Ack returned by Conn.ReadAck is owned by the Conn and
// valid only until the next ReadAck on that Conn (acks are per-packet
// hot-path traffic; reusing one struct keeps the receive path
// allocation-free). Callers that need an ack beyond that must copy it,
// including the Statuses slice.
type Ack struct {
	Kind     AckKind
	Seqno    int64    // for AckData: the packet acknowledged
	Statuses []Status // closest datanode first
}

// OK reports whether every status in the ack is StatusSuccess.
func (a Ack) OK() bool {
	for _, s := range a.Statuses {
		if s != StatusSuccess {
			return false
		}
	}
	return true
}

// FirstBadIndex returns the pipeline index (closest datanode = 0) of the
// first non-success status, or -1 if all succeeded.
func (a Ack) FirstBadIndex() int {
	for i, s := range a.Statuses {
		if s != StatusSuccess {
			return i
		}
	}
	return -1
}
