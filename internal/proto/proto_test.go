package proto

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/checksum"
)

// duplex is an in-memory ReadWriter for codec tests.
type duplex struct{ bytes.Buffer }

func TestWriteBlockHeaderRoundTrip(t *testing.T) {
	var buf duplex
	c := NewConn(&buf)
	in := &WriteBlockHeader{
		Block: block.Block{ID: 42, Gen: 7, NumBytes: 1234},
		Targets: []block.DatanodeInfo{
			{Name: "dn2", Addr: "mem://dn2", Rack: "/rack-a"},
			{Name: "dn3", Addr: "mem://dn3", Rack: "/rack-b"},
		},
		Client: "client-1",
		Mode:   ModeSmarth,
	}
	if err := c.WriteHeader(OpWriteBlock, in); err != nil {
		t.Fatal(err)
	}
	op, h, err := c.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpWriteBlock {
		t.Fatalf("op = %v, want OpWriteBlock", op)
	}
	out, ok := h.(*WriteBlockHeader)
	if !ok {
		t.Fatalf("decoded %T, want *WriteBlockHeader", h)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in=%+v\nout=%+v", in, out)
	}
}

func TestWriteBlockHeaderEmptyTargets(t *testing.T) {
	var buf duplex
	c := NewConn(&buf)
	in := &WriteBlockHeader{Block: block.Block{ID: 1}, Client: "c", Mode: ModeHDFS}
	if err := c.WriteHeader(OpWriteBlock, in); err != nil {
		t.Fatal(err)
	}
	_, h, err := c.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	out := h.(*WriteBlockHeader)
	if len(out.Targets) != 0 {
		t.Fatalf("targets = %v, want empty", out.Targets)
	}
}

func TestReadBlockHeaderRoundTrip(t *testing.T) {
	var buf duplex
	c := NewConn(&buf)
	in := &ReadBlockHeader{Block: block.Block{ID: 9, Gen: 2, NumBytes: 100}, Offset: 10, Length: 50}
	if err := c.WriteHeader(OpReadBlock, in); err != nil {
		t.Fatal(err)
	}
	op, h, err := c.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpReadBlock {
		t.Fatalf("op = %v", op)
	}
	if out := h.(*ReadBlockHeader); !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: in=%+v out=%+v", in, out)
	}
}

func TestHeaderTypeMismatch(t *testing.T) {
	var buf duplex
	c := NewConn(&buf)
	if err := c.WriteHeader(OpWriteBlock, &ReadBlockHeader{}); err == nil {
		t.Fatal("accepted wrong header type")
	}
	if err := c.WriteHeader(Op(0x99), nil); err == nil {
		t.Fatal("accepted unknown op")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	var buf duplex
	c := NewConn(&buf)
	data := bytes.Repeat([]byte{0xA5}, 1500)
	in := &Packet{
		Seqno:  11,
		Offset: 64 << 10,
		Last:   true,
		Sums:   checksum.Sum(data, DefaultChunkSize),
		Data:   data,
	}
	if err := c.WritePacket(in); err != nil {
		t.Fatal(err)
	}
	out, err := c.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if out.Seqno != in.Seqno || out.Offset != in.Offset || out.Last != in.Last {
		t.Fatalf("meta mismatch: %+v vs %+v", out, in)
	}
	if !bytes.Equal(out.Data, in.Data) {
		t.Fatal("data mismatch")
	}
	if err := checksum.VerifyEncoded(out.Data, out.RawSums, DefaultChunkSize); err != nil {
		t.Fatal(err)
	}
	sums, err := out.DecodedSums()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sums, in.Sums) {
		t.Fatalf("sums mismatch: %v vs %v", sums, in.Sums)
	}
	out.Release()
}

func TestEmptyLastPacket(t *testing.T) {
	var buf duplex
	c := NewConn(&buf)
	in := &Packet{Seqno: 3, Offset: 128, Last: true}
	if err := c.WritePacket(in); err != nil {
		t.Fatal(err)
	}
	out, err := c.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Last || len(out.Data) != 0 || len(out.RawSums) != 0 {
		t.Fatalf("empty last packet decoded as %+v", out)
	}
	out.Release()
}

func TestAckRoundTrip(t *testing.T) {
	var buf duplex
	c := NewConn(&buf)
	in := &Ack{Kind: AckData, Seqno: 77, Statuses: []Status{StatusSuccess, StatusErrorChecksum, StatusError}}
	if err := c.WriteAck(in); err != nil {
		t.Fatal(err)
	}
	out, err := c.ReadAck()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: in=%+v out=%+v", in, out)
	}
	if out.OK() {
		t.Fatal("OK() = true with error statuses")
	}
	if got := out.FirstBadIndex(); got != 1 {
		t.Fatalf("FirstBadIndex = %d, want 1", got)
	}
}

func TestFNFAAck(t *testing.T) {
	var buf duplex
	c := NewConn(&buf)
	in := &Ack{Kind: AckFNFA, Seqno: -1, Statuses: []Status{StatusSuccess}}
	if err := c.WriteAck(in); err != nil {
		t.Fatal(err)
	}
	out, err := c.ReadAck()
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != AckFNFA || !out.OK() || out.FirstBadIndex() != -1 {
		t.Fatalf("FNFA decoded as %+v", out)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf duplex
	c := NewConn(&buf)
	if err := c.WritePacket(&Packet{Seqno: 1, Data: []byte("abc"), Sums: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		var short duplex
		short.Write(raw[:cut])
		if _, err := NewConn(&short).ReadPacket(); err == nil { //smarth:owns-packet — every prefix must fail, no packet allocated
			t.Fatalf("ReadPacket succeeded on %d/%d-byte prefix", cut, len(raw))
		}
	}
}

func TestReadHeaderEOF(t *testing.T) {
	var empty duplex
	if _, _, err := NewConn(&empty).ReadHeader(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestVersionCheck(t *testing.T) {
	var buf duplex
	// Hand-craft a frame with a bad version byte.
	buf.Write([]byte{0, 0, 0, 2, 99, byte(OpReadBlock)})
	if _, _, err := NewConn(&buf).ReadHeader(); err == nil {
		t.Fatal("accepted wrong protocol version")
	}
}

func TestStringers(t *testing.T) {
	if OpWriteBlock.String() != "WRITE_BLOCK" || OpReadBlock.String() != "READ_BLOCK" || Op(0).String() != "UNKNOWN_OP" {
		t.Fatal("Op.String values wrong")
	}
	if ModeHDFS.String() != "HDFS" || ModeSmarth.String() != "SMARTH" {
		t.Fatal("WriteMode.String values wrong")
	}
	if StatusSuccess.String() != "SUCCESS" || StatusError.String() != "ERROR" ||
		StatusErrorChecksum.String() != "ERROR_CHECKSUM" || Status(99).String() != "UNKNOWN_STATUS" {
		t.Fatal("Status.String values wrong")
	}
	if AckData.String() != "DATA" || AckFNFA.String() != "FNFA" || AckHeader.String() != "HEADER" || AckKind(9).String() != "UNKNOWN_ACK" {
		t.Fatal("AckKind.String values wrong")
	}
}

// Property: packets of arbitrary content round-trip bit-exactly.
func TestQuickPacketRoundTrip(t *testing.T) {
	f := func(seqno, offset int64, last bool, data []byte) bool {
		var buf duplex
		c := NewConn(&buf)
		in := &Packet{
			Seqno: seqno, Offset: offset, Last: last,
			Sums: checksum.Sum(data, DefaultChunkSize),
			Data: data,
		}
		if c.WritePacket(in) != nil {
			return false
		}
		out, err := c.ReadPacket()
		if err != nil {
			return false
		}
		defer out.Release()
		return out.Seqno == seqno && out.Offset == offset && out.Last == last &&
			bytes.Equal(out.Data, data) &&
			checksum.VerifyEncoded(out.Data, out.RawSums, DefaultChunkSize) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: write-block headers with arbitrary strings round-trip.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(id int64, gen uint64, nb int64, client, n1, a1, r1 string, mode bool) bool {
		if len(client) > 60000 || len(n1) > 60000 || len(a1) > 60000 || len(r1) > 60000 {
			return true // out of uint16 length-prefix contract
		}
		m := ModeHDFS
		if mode {
			m = ModeSmarth
		}
		in := &WriteBlockHeader{
			Block:   block.Block{ID: block.ID(id), Gen: block.GenStamp(gen), NumBytes: nb},
			Targets: []block.DatanodeInfo{{Name: n1, Addr: a1, Rack: r1}},
			Client:  client,
			Mode:    m,
		}
		var buf duplex
		c := NewConn(&buf)
		if c.WriteHeader(OpWriteBlock, in) != nil {
			return false
		}
		_, h, err := c.ReadHeader()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, h.(*WriteBlockHeader))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPacketEncodeDecode(b *testing.B) {
	data := make([]byte, DefaultPacketSize)
	sums := checksum.Sum(data, DefaultChunkSize)
	b.SetBytes(DefaultPacketSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf duplex
		c := NewConn(&buf)
		if err := c.WritePacket(&Packet{Seqno: int64(i), Sums: sums, Data: data}); err != nil {
			b.Fatal(err)
		}
		out, err := c.ReadPacket()
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

// BenchmarkPacketRoundTrip measures the steady-state cost of one packet
// through the codec over a reused connection — the shape of the datanode
// receive/forward loop. Acceptance bound: ≤2 allocs/op.
func BenchmarkPacketRoundTrip(b *testing.B) {
	data := make([]byte, DefaultPacketSize)
	for i := range data {
		data[i] = byte(i)
	}
	var buf duplex
	c := NewConn(&buf)
	var sums []uint32
	b.SetBytes(DefaultPacketSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sums = checksum.AppendSums(sums[:0], data, DefaultChunkSize)
		if err := c.WritePacket(&Packet{Seqno: int64(i), Sums: sums, Data: data}); err != nil {
			b.Fatal(err)
		}
		out, err := c.ReadPacket()
		if err != nil {
			b.Fatal(err)
		}
		if err := checksum.VerifyEncoded(out.Data, out.RawSums, DefaultChunkSize); err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

// Property: arbitrary byte streams never panic the decoders; they either
// parse or error.
func TestQuickDecodeRobustness(t *testing.T) {
	f := func(raw []byte) bool {
		var buf duplex
		buf.Write(raw)
		c := NewConn(&buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("ReadHeader panicked on %x: %v", raw, r)
				}
			}()
			c.ReadHeader()
		}()
		var buf2 duplex
		buf2.Write(raw)
		c2 := NewConn(&buf2)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("ReadPacket panicked on %x: %v", raw, r)
				}
			}()
			if p, err := c2.ReadPacket(); err == nil {
				p.Release()
			}
		}()
		var buf3 duplex
		buf3.Write(raw)
		c3 := NewConn(&buf3)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("ReadAck panicked on %x: %v", raw, r)
				}
			}()
			c3.ReadAck()
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Giant frame lengths must be rejected, not allocated.
func TestHugeFrameRejected(t *testing.T) {
	var buf duplex
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, err := NewConn(&buf).ReadHeader(); err == nil {
		t.Fatal("4GB frame accepted")
	}
}
