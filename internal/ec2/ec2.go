// Package ec2 encodes Table I of the paper: the Amazon EC2 instance types
// used in the evaluation and the four cluster presets built from them.
// The network figures are the effective per-VM bandwidths the authors
// measured (≈216 Mbps for small instances, ≈376 Mbps for medium and
// large).
package ec2

import "fmt"

// Mbps converts megabits/second to bytes/second.
func Mbps(v float64) float64 { return v * 1e6 / 8 }

// InstanceType is a row of Table I.
type InstanceType struct {
	Name        string
	MemoryGB    float64
	ECUs        int
	NetworkMbps float64
}

// NetworkBps returns the instance NIC capacity in bytes per second.
func (t InstanceType) NetworkBps() float64 { return Mbps(t.NetworkMbps) }

func (t InstanceType) String() string {
	return fmt.Sprintf("%s(%.2fGB, %d ECU, ~%.0fMbps)", t.Name, t.MemoryGB, t.ECUs, t.NetworkMbps)
}

// Table I.
var (
	Small  = InstanceType{Name: "small", MemoryGB: 1.7, ECUs: 1, NetworkMbps: 216}
	Medium = InstanceType{Name: "medium", MemoryGB: 3.75, ECUs: 2, NetworkMbps: 376}
	Large  = InstanceType{Name: "large", MemoryGB: 7.5, ECUs: 4, NetworkMbps: 376}
)

// Types lists all instance types in Table I order.
var Types = []InstanceType{Small, Medium, Large}

// ByName looks up an instance type.
func ByName(name string) (InstanceType, bool) {
	for _, t := range Types {
		if t.Name == name {
			return t, true
		}
	}
	return InstanceType{}, false
}

// ClusterPreset is one of the paper's four evaluation clusters: the
// instance types of the datanodes (9 of them), plus the type of the
// client/namenode machine.
type ClusterPreset struct {
	Name      string
	Datanodes []InstanceType // 9 entries
	Client    InstanceType   // the machine running `hdfs put`
}

// The paper's clusters (§V-A): three homogeneous 1+9 clusters and one
// heterogeneous cluster of 3 small + 4 medium + 3 large where one medium
// node is the namenode.
var (
	SmallCluster  = homogeneous("small", Small)
	MediumCluster = homogeneous("medium", Medium)
	LargeCluster  = homogeneous("large", Large)
	HeteroCluster = ClusterPreset{
		Name: "hetero",
		Datanodes: []InstanceType{
			Small, Small, Small,
			Medium, Medium, Medium, // fourth medium is the namenode
			Large, Large, Large,
		},
		Client: Medium,
	}
)

// Presets lists the four evaluation clusters.
var Presets = []ClusterPreset{SmallCluster, MediumCluster, LargeCluster, HeteroCluster}

func homogeneous(name string, t InstanceType) ClusterPreset {
	dns := make([]InstanceType, 9)
	for i := range dns {
		dns[i] = t
	}
	return ClusterPreset{Name: name, Datanodes: dns, Client: t}
}

// PresetByName looks up one of the four evaluation clusters.
func PresetByName(name string) (ClusterPreset, bool) {
	for _, p := range Presets {
		if p.Name == name {
			return p, true
		}
	}
	return ClusterPreset{}, false
}
