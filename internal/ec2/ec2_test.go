package ec2

import "testing"

func TestTableI(t *testing.T) {
	if Small.MemoryGB != 1.7 || Small.ECUs != 1 || Small.NetworkMbps != 216 {
		t.Fatalf("Small = %v", Small)
	}
	if Medium.MemoryGB != 3.75 || Medium.ECUs != 2 || Medium.NetworkMbps != 376 {
		t.Fatalf("Medium = %v", Medium)
	}
	if Large.MemoryGB != 7.5 || Large.ECUs != 4 || Large.NetworkMbps != 376 {
		t.Fatalf("Large = %v", Large)
	}
}

func TestMbps(t *testing.T) {
	if got := Mbps(8); got != 1e6 {
		t.Fatalf("Mbps(8) = %v, want 1e6 B/s", got)
	}
	if got := Small.NetworkBps(); got != 216e6/8 {
		t.Fatalf("Small.NetworkBps = %v", got)
	}
}

func TestByName(t *testing.T) {
	for _, want := range Types {
		got, ok := ByName(want.Name)
		if !ok || got != want {
			t.Fatalf("ByName(%q) = %v, %v", want.Name, got, ok)
		}
	}
	if _, ok := ByName("xlarge"); ok {
		t.Fatal("ByName accepted unknown type")
	}
}

func TestPresets(t *testing.T) {
	for _, p := range Presets {
		if len(p.Datanodes) != 9 {
			t.Fatalf("preset %s has %d datanodes, want 9", p.Name, len(p.Datanodes))
		}
	}
	h, ok := PresetByName("hetero")
	if !ok {
		t.Fatal("hetero preset missing")
	}
	counts := map[string]int{}
	for _, dn := range h.Datanodes {
		counts[dn.Name]++
	}
	// 3 small + 3 medium (one of the paper's 4 mediums is the namenode) + 3 large.
	if counts["small"] != 3 || counts["medium"] != 3 || counts["large"] != 3 {
		t.Fatalf("hetero composition = %v", counts)
	}
	if h.Client.Name != "medium" {
		t.Fatalf("hetero client = %s, want medium", h.Client.Name)
	}
	if _, ok := PresetByName("mega"); ok {
		t.Fatal("unknown preset accepted")
	}
}

func TestStringer(t *testing.T) {
	if Small.String() == "" {
		t.Fatal("empty String()")
	}
}
