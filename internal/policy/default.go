package policy

import (
	"math/rand"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/proto"
)

// picker accumulates pipeline targets with exclusion bookkeeping. It is
// shared by the built-in policies so the rack-aware tail (second replica
// on a remote rack, third on the second's rack, rest random) is
// implemented exactly once. Moved verbatim from the namenode's
// pre-policy placement.go: the rng draw order is part of the
// conformance contract.
type picker struct {
	view   ClusterView
	rng    *rand.Rand
	picked []block.DatanodeInfo
	used   map[string]bool
	alive  map[string]bool
}

func newPicker(view ClusterView, rng *rand.Rand, exclude []string) *picker {
	p := &picker{
		view:  view,
		rng:   rng,
		used:  make(map[string]bool, len(exclude)+4),
		alive: make(map[string]bool),
	}
	for _, e := range exclude {
		p.used[e] = true
	}
	for _, n := range view.Placeable() {
		p.alive[n] = true
	}
	return p
}

func (p *picker) excludeList() []string {
	out := make([]string, 0, len(p.used))
	for n := range p.used {
		out = append(out, n)
	}
	return out
}

// add records name as the next pipeline target if it is usable.
func (p *picker) add(name string, ok bool) bool {
	if !ok || p.used[name] || !p.alive[name] {
		return false
	}
	info, known := p.view.Lookup(name)
	if !known {
		return false
	}
	p.picked = append(p.picked, info)
	p.used[name] = true
	return true
}

// randomAlive picks any live, unused node.
func (p *picker) randomAlive() bool {
	excl := p.excludeList()
	for {
		name, ok := p.view.ChooseRandom(p.rng, excl)
		if !ok {
			return false
		}
		if p.add(name, true) {
			return true
		}
		excl = append(excl, name) // dead or stale-topology node: skip it
	}
}

// remoteRackOf prefers a live node on a rack other than ref's, degrading
// to any live node when the cluster has one rack (Hadoop's fallback).
func (p *picker) remoteRackOf(ref string) bool {
	excl := p.excludeList()
	for {
		name, ok := p.view.ChooseRandomRemoteRack(p.rng, ref, excl)
		if !ok {
			return p.randomAlive()
		}
		if p.add(name, true) {
			return true
		}
		excl = append(excl, name)
	}
}

// sameRackAs prefers a live node sharing ref's rack, degrading to any.
func (p *picker) sameRackAs(ref string) bool {
	rack, _ := p.view.RackOf(ref)
	excl := p.excludeList()
	for {
		name, ok := p.view.ChooseRandomInRack(p.rng, rack, excl)
		if !ok {
			return p.randomAlive()
		}
		if p.add(name, true) {
			return true
		}
		excl = append(excl, name)
	}
}

// fillTail extends the pipeline to the requested replication after the
// first target is in place: second replica on a remote rack, third on
// the second's rack, any further replicas random (both the default HDFS
// policy in §V-B.1 and Algorithm 1 lines 11–16 share this shape).
func (p *picker) fillTail(replication int) {
	for len(p.picked) < replication {
		switch len(p.picked) {
		case 1:
			if !p.remoteRackOf(p.picked[0].Name) {
				return
			}
		case 2:
			if !p.sameRackAs(p.picked[1].Name) {
				return
			}
		default:
			if !p.randomAlive() {
				return
			}
		}
	}
}

// defaultPolicy is the pre-policy behavior extracted verbatim. HDFS
// mode: first replica on the client itself when the client is a
// datanode, otherwise a random node, then the standard rack-aware tail.
// SMARTH mode with speed records (Algorithm 1): first datanode drawn
// uniformly from the client's TopN fastest (n = activeDatanodes /
// replication), same tail; without records it falls back to the HDFS
// path (Algorithm 1 line 21). Pipelines chain; ordering is Algorithm 2.
type defaultPolicy struct{}

func (d *defaultPolicy) Name() string { return Default }

func (d *defaultPolicy) ReplicationFor(path string, requested int) int { return requested }

func (d *defaultPolicy) Place(view ClusterView, in PlaceInput) ([]block.DatanodeInfo, error) {
	if in.Mode == proto.ModeSmarth && view.Registry().HasRecords(in.Client) {
		return placeSmarth(view, in)
	}
	return placeDefault(view, in)
}

func (d *defaultPolicy) ExcludeBusy(mode proto.WriteMode) bool {
	return mode == proto.ModeSmarth
}

func (d *defaultPolicy) OrderPipeline(idx int, targets []string, speedOf func(string) float64, rng *rand.Rand) bool {
	return core.LocalOptimize(targets, speedOf, rng)
}

func (d *defaultPolicy) PipelineShape(idx, targets int, mode proto.WriteMode) Shape {
	return ShapeChain
}

func (d *defaultPolicy) ObserveHeartbeat(client string, speeds map[string]float64) {}

// placeDefault is HDFS's topology-aware placement.
func placeDefault(view ClusterView, in PlaceInput) ([]block.DatanodeInfo, error) {
	p := newPicker(view, in.Rng, in.Exclude)
	if !p.add(in.Client, true) && !p.randomAlive() {
		return nil, ErrNoDatanodes
	}
	p.fillTail(in.Replication)
	return p.picked, nil
}

// placeSmarth is Algorithm 1's placement for a client with speed records.
func placeSmarth(view ClusterView, in PlaceInput) ([]block.DatanodeInfo, error) {
	p := newPicker(view, in.Rng, in.Exclude)
	candidates := make([]string, 0, len(p.alive))
	for _, n := range view.Placeable() {
		if !p.used[n] {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoDatanodes
	}
	n := core.MaxPipelines(len(p.alive), in.Replication)
	topN := view.Registry().TopN(in.Client, n, candidates)
	if !p.add(topN[in.Rng.Intn(len(topN))], true) {
		// TopN nodes raced to death; fall back to anything alive.
		if !p.randomAlive() {
			return nil, ErrNoDatanodes
		}
	}
	p.fillTail(in.Replication)
	return p.picked, nil
}
