// Package policy is the pluggable decision layer for the write path: one
// interface covering block placement (target selection under exclude
// sets), the per-file replication factor, and the pipeline shape (chain
// vs. fan-out). The namenode, the writesched engine, and the simulator
// all consult a Policy through this package instead of hard-coding the
// paper's algorithms, so an alternative strategy is written once and
// runs identically live and in the DES — with conformance replaying it
// on both substrates (see internal/conformance).
//
// Three policies are built in:
//
//   - "default" — the current behavior extracted verbatim: HDFS's
//     topology-aware placement, SMARTH's Algorithm 1 TopN first node,
//     Algorithm 2 local optimization, chained pipelines. Its decision
//     logs are byte-identical to the pre-policy engine's.
//   - "speedaware" — extends Algorithm 2's cost model with per-datanode
//     throughput histories accumulated from client heartbeats: the
//     first pipeline node is the deterministic argmax of the client's
//     registry speed plus the cluster-wide history, and pipeline
//     ordering is a deterministic speed sort with a periodic
//     exploration swap (no rng draws).
//   - "fanout" — SDN-style replication offload: the interior (first)
//     datanode mirrors packets to the remaining replicas in parallel
//     instead of chaining them, shortening the ack path at the cost of
//     doubling the interior node's egress.
//
// Determinism contract: policy code is part of the simdeterminism
// discipline (internal/analysis/simdeterminism) — no wall clock, no
// ambient math/rand (only the explicitly seeded *rand.Rand handed in
// through PlaceInput/OrderPipeline), and no map-iteration order feeding
// a decision. Every choice must be a pure function of the inputs, the
// seeded rng, and state fed through ObserveHeartbeat in a deterministic
// call order.
package policy

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/proto"
)

// Built-in policy names, accepted by New and carried in nnapi requests.
const (
	// Default is the extracted legacy behavior; its conformance decision
	// logs are byte-identical to the pre-policy engine.
	Default = "default"
	// SpeedAware augments placement with observed throughput histories.
	SpeedAware = "speedaware"
	// Fanout replaces the mirror chain with interior-node fan-out.
	Fanout = "fanout"
)

// ErrNoDatanodes is returned when placement cannot find a single target.
// The namenode re-exports it (namenode.ErrNoDatanodes) and the write
// substrates match on it to decide whether an addBlock failure is
// retryable after a pipeline retirement.
var ErrNoDatanodes = errors.New("policy: no available datanodes")

// Shape is a pipeline's data-plane topology.
type Shape uint8

const (
	// ShapeChain is the classic HDFS/SMARTH mirror chain: the client
	// streams to targets[0], which mirrors to targets[1], and so on.
	ShapeChain Shape = iota
	// ShapeFanout has the first datanode mirror every packet to all
	// remaining targets in parallel (replication offload); acks from the
	// leaves are merged at the interior node.
	ShapeFanout
)

// String names the shape as it appears in decision-log lines.
func (s Shape) String() string {
	if s == ShapeFanout {
		return "fanout"
	}
	return "chain"
}

// ClusterView is the namenode state a placement decision may read. It is
// implemented by the namenode's datanode manager and is valid only for
// the duration of one Place call (the namenode holds the manager's lock
// across it, so the view is consistent and the shared rng race-free).
type ClusterView interface {
	// Placeable returns the datanodes eligible for new replicas (live
	// and not decommissioning), sorted by name.
	Placeable() []string
	// Lookup resolves a datanode by name regardless of liveness.
	Lookup(name string) (block.DatanodeInfo, bool)
	// ChooseRandom picks a uniformly random known datanode not in
	// exclude (false when none remain).
	ChooseRandom(rng *rand.Rand, exclude []string) (string, bool)
	// ChooseRandomInRack picks a random datanode in the given rack.
	ChooseRandomInRack(rng *rand.Rand, rack string, exclude []string) (string, bool)
	// ChooseRandomRemoteRack picks a random datanode on any rack other
	// than ref's.
	ChooseRandomRemoteRack(rng *rand.Rand, ref string, exclude []string) (string, bool)
	// RackOf resolves a datanode's rack.
	RackOf(name string) (string, bool)
	// Registry exposes the namenode's per-client speed records
	// (Algorithm 1 state).
	Registry() *core.Registry
}

// PlaceInput carries one placement decision's parameters.
type PlaceInput struct {
	// Client is the writing client's name ("" for maintenance placement
	// such as re-replication, which has no client affinity).
	Client string
	// Mode is the write protocol the placement serves.
	Mode proto.WriteMode
	// Replication is the number of targets wanted; fewer is acceptable
	// on a small cluster, zero is an error.
	Replication int
	// Exclude lists datanodes that must not be chosen.
	Exclude []string
	// Rng is the namenode's seeded placement rng. Policies must draw all
	// randomness from it (or use none) so placement stays reproducible.
	Rng *rand.Rand
}

// Policy is one write-path strategy: where replicas go, how many there
// are, and what shape the pipeline takes. Implementations must be safe
// for concurrent use; Place additionally runs under the namenode's
// datanode-manager lock (via the ClusterView contract).
type Policy interface {
	// Name is the policy's registry key ("default", "speedaware", ...).
	Name() string
	// ReplicationFor maps a file's requested replication factor to the
	// one actually used (identity for all built-in policies; the hook
	// exists so a policy can grow/shrink replication per file).
	ReplicationFor(path string, requested int) int
	// Place chooses up to in.Replication pipeline targets. The returned
	// order is the pipeline order (first element receives the client's
	// stream). Zero targets must be reported as ErrNoDatanodes (possibly
	// wrapped).
	Place(view ClusterView, in PlaceInput) ([]block.DatanodeInfo, error)
	// ExcludeBusy reports whether the engine should exclude datanodes
	// serving unretired pipelines from addBlock/recovery requests (the
	// SMARTH one-pipeline-per-datanode rule).
	ExcludeBusy(mode proto.WriteMode) bool
	// OrderPipeline may reorder targets in place after placement (the
	// Algorithm 2 slot). idx is the block index, speedOf the client's
	// local speed estimate, rng the engine's seeded rng. It reports
	// whether an exploration swap happened (decision-logged).
	OrderPipeline(idx int, targets []string, speedOf func(string) float64, rng *rand.Rand) bool
	// PipelineShape picks the data-plane topology for block idx's
	// pipeline of the given target count. The engine forces ShapeChain
	// when striping is enabled (the two fan-outs do not compose).
	PipelineShape(idx, targets int, mode proto.WriteMode) Shape
	// ObserveHeartbeat feeds one client heartbeat's speed table into the
	// policy's state (no-op for stateless policies). Called by the
	// namenode for every registered policy on every client heartbeat, so
	// histories accumulate regardless of which policy placed the write.
	ObserveHeartbeat(client string, speeds map[string]float64)
}

// New resolves a policy by name; "" selects Default. Unknown names
// error, listing the known policies.
func New(name string) (Policy, error) {
	switch name {
	case "", Default:
		return &defaultPolicy{}, nil
	case SpeedAware:
		return newSpeedAware(), nil
	case Fanout:
		return &fanoutPolicy{}, nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (known: %v)", name, Names())
}

// Names lists the built-in policy names in sorted order.
func Names() []string {
	return []string{Default, Fanout, SpeedAware}
}
