package policy

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/proto"
)

// fakeView is a deterministic ClusterView: random choices resolve to the
// first eligible name in sorted order (the rng is accepted but unused),
// which makes placement outcomes exact in assertions.
type fakeView struct {
	nodes map[string]string // name -> rack
	reg   *core.Registry
}

func newFakeView(nodes map[string]string) *fakeView {
	return &fakeView{nodes: nodes, reg: core.NewRegistry()}
}

func (v *fakeView) names() []string {
	out := make([]string, 0, len(v.nodes))
	for n := range v.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (v *fakeView) Placeable() []string { return v.names() }

func (v *fakeView) Lookup(name string) (block.DatanodeInfo, bool) {
	if _, ok := v.nodes[name]; !ok {
		return block.DatanodeInfo{}, false
	}
	return block.DatanodeInfo{Name: name, Addr: name + ":1"}, true
}

func (v *fakeView) pick(exclude []string, keep func(name, rack string) bool) (string, bool) {
	excluded := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		excluded[e] = true
	}
	for _, n := range v.names() {
		if !excluded[n] && keep(n, v.nodes[n]) {
			return n, true
		}
	}
	return "", false
}

func (v *fakeView) ChooseRandom(rng *rand.Rand, exclude []string) (string, bool) {
	return v.pick(exclude, func(string, string) bool { return true })
}

func (v *fakeView) ChooseRandomInRack(rng *rand.Rand, rack string, exclude []string) (string, bool) {
	return v.pick(exclude, func(_, r string) bool { return r == rack })
}

func (v *fakeView) ChooseRandomRemoteRack(rng *rand.Rand, ref string, exclude []string) (string, bool) {
	refRack := v.nodes[ref]
	return v.pick(exclude, func(_, r string) bool { return r != refRack })
}

func (v *fakeView) RackOf(name string) (string, bool) {
	r, ok := v.nodes[name]
	return r, ok
}

func (v *fakeView) Registry() *core.Registry { return v.reg }

func twoRackView() *fakeView {
	return newFakeView(map[string]string{
		"dn1": "/rack-a", "dn2": "/rack-a", "dn3": "/rack-a",
		"dn4": "/rack-b", "dn5": "/rack-b", "dn6": "/rack-b",
	})
}

func targetNames(targets []block.DatanodeInfo) []string {
	out := make([]string, len(targets))
	for i, t := range targets {
		out[i] = t.Name
	}
	return out
}

func TestNewResolvesBuiltins(t *testing.T) {
	for _, name := range append([]string{""}, Names()...) {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = Default
		}
		if p.Name() != want {
			t.Fatalf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("New(bogus) succeeded")
	}
}

func TestShapeString(t *testing.T) {
	if ShapeChain.String() != "chain" || ShapeFanout.String() != "fanout" {
		t.Fatalf("Shape strings: %v %v", ShapeChain, ShapeFanout)
	}
}

func TestDefaultPlaceRackAwareTail(t *testing.T) {
	view := twoRackView()
	pol, _ := New(Default)
	got, err := pol.Place(view, PlaceInput{
		Client:      "dn1",
		Mode:        proto.ModeHDFS,
		Replication: 3,
		Rng:         rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Client-local first replica, remote-rack second, same-rack-as-second
	// third; the fake resolves "random" to first-sorted, so the outcome
	// is exact.
	want := []string{"dn1", "dn4", "dn5"}
	if !reflect.DeepEqual(targetNames(got), want) {
		t.Fatalf("targets = %v, want %v", targetNames(got), want)
	}
}

func TestDefaultPlaceHonorsExclude(t *testing.T) {
	view := twoRackView()
	pol, _ := New(Default)
	got, err := pol.Place(view, PlaceInput{
		Mode:        proto.ModeHDFS,
		Replication: 2,
		Exclude:     []string{"dn1", "dn2", "dn3", "dn4"},
		Rng:         rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range targetNames(got) {
		if n != "dn5" && n != "dn6" {
			t.Fatalf("excluded node placed: %v", targetNames(got))
		}
	}
	if _, err := pol.Place(view, PlaceInput{
		Mode:        proto.ModeHDFS,
		Replication: 1,
		Exclude:     view.names(),
		Rng:         rand.New(rand.NewSource(1)),
	}); err != ErrNoDatanodes {
		t.Fatalf("all-excluded err = %v, want ErrNoDatanodes", err)
	}
}

func TestSpeedAwareColdStartFallsBack(t *testing.T) {
	view := twoRackView()
	pol, _ := New(SpeedAware)
	got, err := pol.Place(view, PlaceInput{
		Client:      "client-x",
		Mode:        proto.ModeSmarth,
		Replication: 3,
		Rng:         rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("cold-start placement returned %v", targetNames(got))
	}
}

func TestSpeedAwareArgmaxIsDeterministic(t *testing.T) {
	view := twoRackView()
	pol, _ := New(SpeedAware)
	pol.ObserveHeartbeat("any-client", map[string]float64{
		"dn2": 50e6, "dn5": 120e6, "dn6": 80e6,
	})
	for i := 0; i < 5; i++ {
		got, err := pol.Place(view, PlaceInput{
			Client:      "client-x",
			Mode:        proto.ModeSmarth,
			Replication: 3,
			Rng:         rand.New(rand.NewSource(int64(i))),
		})
		if err != nil {
			t.Fatal(err)
		}
		if targetNames(got)[0] != "dn5" {
			t.Fatalf("head = %v, want dn5 (history argmax)", targetNames(got))
		}
	}
	// The placing client's own registry records stack on the history.
	view.reg.Update("client-x", map[string]float64{"dn6": 100e6})
	got, err := pol.Place(view, PlaceInput{
		Client:      "client-x",
		Mode:        proto.ModeSmarth,
		Replication: 3,
		Rng:         rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if targetNames(got)[0] != "dn6" {
		t.Fatalf("head = %v, want dn6 (registry 100 + history 80 > 120)", targetNames(got))
	}
}

func TestSpeedAwareArgmaxSkipsExcluded(t *testing.T) {
	view := twoRackView()
	pol, _ := New(SpeedAware)
	pol.ObserveHeartbeat("c", map[string]float64{"dn5": 120e6, "dn6": 80e6})
	got, err := pol.Place(view, PlaceInput{
		Client:      "c",
		Mode:        proto.ModeSmarth,
		Replication: 2,
		Exclude:     []string{"dn5"},
		Rng:         rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if targetNames(got)[0] != "dn6" {
		t.Fatalf("head = %v, want dn6", targetNames(got))
	}
}

func TestSpeedAwareOrderPipeline(t *testing.T) {
	pol := newSpeedAware()
	speeds := map[string]float64{"a": 10, "b": 30, "c": 20}
	speedOf := func(n string) float64 { return speeds[n] }

	targets := []string{"a", "b", "c"}
	if swapped := pol.OrderPipeline(0, targets, speedOf, nil); swapped {
		t.Fatal("idx 0 swapped")
	}
	if !reflect.DeepEqual(targets, []string{"b", "c", "a"}) {
		t.Fatalf("order = %v", targets)
	}

	targets = []string{"a", "b", "c"}
	if swapped := pol.OrderPipeline(explorePeriod-1, targets, speedOf, nil); !swapped {
		t.Fatal("exploration block did not swap")
	}
	if !reflect.DeepEqual(targets, []string{"a", "c", "b"}) {
		t.Fatalf("explored order = %v", targets)
	}
}

func TestObserveHeartbeatEWMA(t *testing.T) {
	pol := newSpeedAware()
	pol.ObserveHeartbeat("c1", map[string]float64{"dn1": 100})
	pol.ObserveHeartbeat("c2", map[string]float64{"dn1": 200, "dn2": 0, "dn3": -5})
	pol.mu.Lock()
	defer pol.mu.Unlock()
	if got := pol.history["dn1"]; got != 150 {
		t.Fatalf("dn1 history = %v, want 150", got)
	}
	if _, ok := pol.history["dn2"]; ok {
		t.Fatal("zero-speed sample stored")
	}
	if _, ok := pol.history["dn3"]; ok {
		t.Fatal("negative sample stored")
	}
}

func TestFanoutShape(t *testing.T) {
	pol, _ := New(Fanout)
	if got := pol.PipelineShape(0, 3, proto.ModeSmarth); got != ShapeFanout {
		t.Fatalf("3 targets: %v", got)
	}
	if got := pol.PipelineShape(0, 2, proto.ModeSmarth); got != ShapeChain {
		t.Fatalf("2 targets: %v", got)
	}
	// Everything else is inherited from default.
	if !pol.ExcludeBusy(proto.ModeSmarth) || pol.ExcludeBusy(proto.ModeHDFS) {
		t.Fatal("fanout ExcludeBusy diverged from default")
	}
}
