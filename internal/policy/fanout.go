package policy

import (
	"repro/internal/proto"
)

// fanoutPolicy keeps the default policy's placement, replication, and
// ordering but switches the data plane to SDN-style replication offload
// (PAPERS.md, arXiv:1812.10584): the first datanode mirrors every packet
// to all remaining replicas in parallel instead of chaining through
// them. With three replicas the ack path shrinks from three serialized
// hops to two, at the cost of doubling the interior node's egress. Two-
// target pipelines stay chained — fan-out with a single leaf is just a
// chain with extra bookkeeping.
type fanoutPolicy struct {
	defaultPolicy
}

func (f *fanoutPolicy) Name() string { return Fanout }

// PipelineShape fans out whenever the interior node has at least two
// leaves to mirror to.
func (f *fanoutPolicy) PipelineShape(idx, targets int, mode proto.WriteMode) Shape {
	if targets >= 3 {
		return ShapeFanout
	}
	return ShapeChain
}
