package policy

import (
	"math/rand"
	"sort"
	"sync"

	"repro/internal/block"
	"repro/internal/proto"
)

// historyAlpha weights the newest heartbeat sample when folding it into
// a datanode's cluster-wide throughput history (same EWMA discount as
// the client-side recorder).
const historyAlpha = 0.5

// explorePeriod is how often the speedaware ordering swaps its head with
// the tail to re-measure a cold datanode: every explorePeriod-th block
// (deterministic — no rng draw — so the swap schedule replays exactly).
const explorePeriod = 4

// speedAware extends Algorithm 2's cost model with observed per-datanode
// throughput histories: every client heartbeat's speed table is folded
// into a cluster-wide EWMA per datanode, and the first pipeline node is
// the deterministic argmax of the placing client's own registry speed
// plus that shared history. Placement draws no randomness (the rack-
// aware tail still does, via the shared picker), and pipeline ordering
// is a deterministic speed sort with a fixed-period exploration swap, so
// speedaware runs are pure functions of the heartbeat sequence.
type speedAware struct {
	fallback defaultPolicy

	mu      sync.Mutex
	history map[string]float64 // datanode -> bytes/second (EWMA over all clients)
}

func newSpeedAware() *speedAware {
	return &speedAware{history: make(map[string]float64)}
}

func (s *speedAware) Name() string { return SpeedAware }

func (s *speedAware) ReplicationFor(path string, requested int) int { return requested }

func (s *speedAware) Place(view ClusterView, in PlaceInput) ([]block.DatanodeInfo, error) {
	p := newPicker(view, in.Rng, in.Exclude)
	best, ok := s.bestOf(view, in.Client, p)
	if !ok {
		// No history anywhere yet: behave exactly like the default
		// policy so cold starts keep its placement quality.
		return s.fallback.Place(view, in)
	}
	if !p.add(best, true) && !p.randomAlive() {
		return nil, ErrNoDatanodes
	}
	p.fillTail(in.Replication)
	return p.picked, nil
}

// bestOf returns the deterministic argmax of registry speed plus shared
// history over the placeable, unexcluded datanodes. ok is false when no
// candidate has any signal (cold cluster) or none remain.
func (s *speedAware) bestOf(view ClusterView, client string, p *picker) (string, bool) {
	reg := view.Registry()
	s.mu.Lock()
	defer s.mu.Unlock()
	best, bestScore, found := "", 0.0, false
	// view.Placeable() is sorted by name, so with strict-greater
	// comparison ties break toward the first name: fully deterministic.
	for _, n := range view.Placeable() {
		if p.used[n] {
			continue
		}
		score := reg.Speed(client, n) + s.history[n]
		if score <= 0 {
			continue
		}
		if !found || score > bestScore {
			best, bestScore, found = n, score, true
		}
	}
	return best, found
}

func (s *speedAware) ExcludeBusy(mode proto.WriteMode) bool {
	return s.fallback.ExcludeBusy(mode)
}

// OrderPipeline sorts targets by local speed descending (ties by name)
// and, every explorePeriod-th block, swaps the head with the last target
// so cold datanodes are re-measured. No rng draws: the order is a pure
// function of (idx, targets, speedOf).
func (s *speedAware) OrderPipeline(idx int, targets []string, speedOf func(string) float64, rng *rand.Rand) bool {
	if len(targets) < 2 {
		return false
	}
	sort.SliceStable(targets, func(i, j int) bool {
		si, sj := speedOf(targets[i]), speedOf(targets[j])
		if si != sj {
			return si > sj
		}
		return targets[i] < targets[j]
	})
	if idx%explorePeriod == explorePeriod-1 {
		last := len(targets) - 1
		targets[0], targets[last] = targets[last], targets[0]
		return true
	}
	return false
}

func (s *speedAware) PipelineShape(idx, targets int, mode proto.WriteMode) Shape {
	return ShapeChain
}

// ObserveHeartbeat folds one heartbeat's speed table into the shared
// per-datanode history. The fold is commutative per datanode (each key
// updates only its own EWMA cell), so map iteration order cannot leak
// into any decision.
func (s *speedAware) ObserveHeartbeat(client string, speeds map[string]float64) {
	if len(speeds) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for dn, speed := range speeds {
		if speed <= 0 {
			continue
		}
		if old, ok := s.history[dn]; ok {
			s.history[dn] = old + historyAlpha*(speed-old)
		} else {
			s.history[dn] = speed
		}
	}
}
