package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/des"
)

func seconds(d time.Duration) float64 { return d.Seconds() }

func TestServerSerialization(t *testing.T) {
	eng := des.New()
	s := NewServer(eng, "s", 1000) // 1000 B/s
	var done []time.Duration
	s.Enqueue(500, func() { done = append(done, eng.Now()) })
	s.Enqueue(500, func() { done = append(done, eng.Now()) })
	eng.Run()
	if len(done) != 2 {
		t.Fatalf("%d jobs completed, want 2", len(done))
	}
	if math.Abs(seconds(done[0])-0.5) > 1e-9 || math.Abs(seconds(done[1])-1.0) > 1e-9 {
		t.Fatalf("completions = %v, want [0.5s, 1s]", done)
	}
	if s.Bytes != 1000 {
		t.Fatalf("Bytes = %d, want 1000", s.Bytes)
	}
}

func TestServerWorkConserving(t *testing.T) {
	eng := des.New()
	s := NewServer(eng, "s", 1000)
	var second time.Duration
	s.Enqueue(1000, func() {
		// Enqueue the next job later, leaving the server idle for 1s.
		eng.Schedule(time.Second, func() {
			s.Enqueue(1000, func() { second = eng.Now() })
		})
	})
	eng.Run()
	if math.Abs(seconds(second)-3.0) > 1e-9 {
		t.Fatalf("second job done at %v, want 3s (1s busy + 1s idle + 1s busy)", second)
	}
}

func TestInfiniteRate(t *testing.T) {
	eng := des.New()
	s := NewServer(eng, "s", 0)
	var at time.Duration = -1
	s.Enqueue(1<<40, func() { at = eng.Now() })
	eng.Run()
	if at != 0 {
		t.Fatalf("infinite-rate job done at %v, want 0", at)
	}
}

func TestDeliverSameRack(t *testing.T) {
	eng := des.New()
	nw := NewNetwork(eng, time.Millisecond)
	a := NewNode(eng, "a", "/r1", 1000, 0)
	b := NewNode(eng, "b", "/r1", 1000, 0)
	nw.Add(a)
	nw.Add(b)
	var at time.Duration
	nw.Deliver(a, b, 500, func() { at = eng.Now() })
	eng.Run()
	// 0.5s egress + 0.5s ingress (store-and-forward stages) + 1ms.
	want := time.Second + time.Millisecond
	if at != want {
		t.Fatalf("arrival = %v, want %v", at, want)
	}
}

func TestDeliverCrossRackThrottled(t *testing.T) {
	eng := des.New()
	nw := NewNetwork(eng, 0)
	a := NewNode(eng, "a", "/r1", 1000, 0)
	b := NewNode(eng, "b", "/r2", 1000, 0)
	a.SetCrossRackLimit(eng, 100)
	nw.Add(a)
	nw.Add(b)
	var at time.Duration
	nw.Deliver(a, b, 100, func() { at = eng.Now() })
	eng.Run()
	// 0.1s egress + 1s cross-out + 0.1s ingress.
	want := 1200 * time.Millisecond
	if at != want {
		t.Fatalf("arrival = %v, want %v", at, want)
	}
}

func TestCrossRackShaperNotUsedInRack(t *testing.T) {
	eng := des.New()
	nw := NewNetwork(eng, 0)
	a := NewNode(eng, "a", "/r1", 1000, 0)
	b := NewNode(eng, "b", "/r1", 1000, 0)
	a.SetCrossRackLimit(eng, 1) // brutally slow, but same rack: unused
	nw.Add(a)
	nw.Add(b)
	var at time.Duration
	nw.Deliver(a, b, 500, func() { at = eng.Now() })
	eng.Run()
	if at != time.Second {
		t.Fatalf("arrival = %v, want 1s (cross-rack shaper must not apply)", at)
	}
}

// Two flows sharing an egress NIC each get ~half the bandwidth: the
// packets interleave through the FIFO server.
func TestBandwidthSharing(t *testing.T) {
	eng := des.New()
	nw := NewNetwork(eng, 0)
	src := NewNode(eng, "src", "/r", 1000, 0)
	d1 := NewNode(eng, "d1", "/r", 1e12, 0)
	d2 := NewNode(eng, "d2", "/r", 1e12, 0)
	nw.Add(src)
	nw.Add(d1)
	nw.Add(d2)

	const packets = 100
	const pkt = 10 // bytes
	var done1, done2 time.Duration
	left1, left2 := packets, packets
	for i := 0; i < packets; i++ {
		nw.Deliver(src, d1, pkt, func() {
			left1--
			if left1 == 0 {
				done1 = eng.Now()
			}
		})
		nw.Deliver(src, d2, pkt, func() {
			left2--
			if left2 == 0 {
				done2 = eng.Now()
			}
		})
	}
	eng.Run()
	// 2000 bytes total through a 1000 B/s NIC: both finish around 2s.
	if math.Abs(seconds(done1)-2.0) > 0.05 || math.Abs(seconds(done2)-2.0) > 0.05 {
		t.Fatalf("flows done at %v / %v, want ≈2s each", done1, done2)
	}
}

func TestPipeliningThroughStages(t *testing.T) {
	// Across many packets, chained stages must give min-rate throughput,
	// not sum-of-stage-times throughput.
	eng := des.New()
	nw := NewNetwork(eng, 0)
	a := NewNode(eng, "a", "/r1", 1000, 0)
	b := NewNode(eng, "b", "/r2", 1000, 0)
	a.SetCrossRackLimit(eng, 500) // bottleneck
	nw.Add(a)
	nw.Add(b)
	const packets, pkt = 100, 10
	var last time.Duration
	left := packets
	for i := 0; i < packets; i++ {
		nw.Deliver(a, b, pkt, func() {
			left--
			if left == 0 {
				last = eng.Now()
			}
		})
	}
	eng.Run()
	// 1000 bytes at bottleneck 500 B/s = 2s (+ one packet's worth of
	// pipeline fill on the other stages).
	if seconds(last) < 2.0 || seconds(last) > 2.1 {
		t.Fatalf("last arrival = %v, want ≈2s (bottleneck-limited)", last)
	}
}

func TestSetNICLimit(t *testing.T) {
	eng := des.New()
	n := NewNode(eng, "n", "/r", 1000, 0)
	n.SetNICLimit(50)
	if n.Egress.Rate() != 50 || n.Ingress.Rate() != 50 {
		t.Fatalf("rates = %v/%v, want 50/50", n.Egress.Rate(), n.Ingress.Rate())
	}
}

func TestNetworkNodeLookup(t *testing.T) {
	eng := des.New()
	nw := NewNetwork(eng, 0)
	n := NewNode(eng, "x", "/r", 1, 1)
	nw.Add(n)
	if nw.Node("x") != n || nw.Node("y") != nil {
		t.Fatal("node lookup broken")
	}
}
