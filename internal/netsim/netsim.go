// Package netsim models a cluster network on the discrete-event engine.
// Every constrained resource — a NIC transmit side, a NIC receive side, a
// per-node cross-rack shaper (the paper's `tc` throttle), a disk — is a
// FIFO rate server: a queue that serializes jobs at a fixed byte rate.
// Contention between concurrent pipelines falls out of the queueing: two
// flows sharing a NIC interleave packets through the same server and each
// sees roughly half the bandwidth, matching how TCP flows share a link at
// packet granularity.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/des"
)

// Server is a FIFO rate server: jobs are serialized at Rate bytes/second
// in arrival order. A non-positive rate means infinite (no delay).
type Server struct {
	eng       *des.Engine
	name      string
	rate      float64 // bytes per second
	busyUntil time.Duration
	// Bytes is the total number of bytes served (for utilization stats).
	Bytes int64
}

// NewServer returns a rate server bound to the engine.
func NewServer(eng *des.Engine, name string, bytesPerSecond float64) *Server {
	return &Server{eng: eng, name: name, rate: bytesPerSecond}
}

// Rate returns the server's byte rate (0 = infinite).
func (s *Server) Rate() float64 { return s.rate }

// SetRate changes the rate; queued jobs already scheduled keep their
// completion times (rate changes apply to later arrivals).
func (s *Server) SetRate(bytesPerSecond float64) { s.rate = bytesPerSecond }

// Enqueue schedules a job of n bytes; done fires when the job finishes
// serializing through this server.
func (s *Server) Enqueue(n int64, done func()) {
	now := s.eng.Now()
	start := s.busyUntil
	if start < now {
		start = now
	}
	var dur time.Duration
	if s.rate > 0 {
		dur = time.Duration(float64(n) / s.rate * float64(time.Second))
	}
	s.busyUntil = start + dur
	s.Bytes += n
	s.eng.At(s.busyUntil, done)
}

// BusyUntil reports when the server's queue drains (for stats).
func (s *Server) BusyUntil() time.Duration { return s.busyUntil }

func (s *Server) String() string {
	return fmt.Sprintf("server(%s, %.0f B/s)", s.name, s.rate)
}

// Node is one machine: NIC transmit/receive servers, an optional
// cross-rack shaper pair, and a disk server.
type Node struct {
	Name string
	Rack string
	// Egress and Ingress model the full-duplex NIC.
	Egress  *Server
	Ingress *Server
	// CrossOut and CrossIn, when non-nil, additionally shape traffic to
	// and from other racks (tc on the rack uplink).
	CrossOut *Server
	CrossIn  *Server
	// Disk serializes local replica writes (the paper's T_w source).
	Disk *Server
}

// NewNode builds a node with the given NIC and disk rates (bytes/sec).
func NewNode(eng *des.Engine, name, rack string, nicBps, diskBps float64) *Node {
	return &Node{
		Name:    name,
		Rack:    rack,
		Egress:  NewServer(eng, name+"/tx", nicBps),
		Ingress: NewServer(eng, name+"/rx", nicBps),
		Disk:    NewServer(eng, name+"/disk", diskBps),
	}
}

// SetCrossRackLimit installs (or removes, with bps <= 0) the node's
// cross-rack shaper.
func (n *Node) SetCrossRackLimit(eng *des.Engine, bps float64) {
	if bps <= 0 {
		n.CrossOut, n.CrossIn = nil, nil
		return
	}
	n.CrossOut = NewServer(eng, n.Name+"/xout", bps)
	n.CrossIn = NewServer(eng, n.Name+"/xin", bps)
}

// SetNICLimit replaces the NIC rate in both directions (the paper's
// per-node 50/150 Mbps contention throttle).
func (n *Node) SetNICLimit(bps float64) {
	n.Egress.SetRate(bps)
	n.Ingress.SetRate(bps)
}

// Network carries packets between nodes.
type Network struct {
	eng *des.Engine
	// HopLatency is the propagation + protocol latency added after a
	// packet clears all rate servers on a hop.
	HopLatency time.Duration
	nodes      map[string]*Node
}

// NewNetwork returns an empty network.
func NewNetwork(eng *des.Engine, hopLatency time.Duration) *Network {
	return &Network{eng: eng, HopLatency: hopLatency, nodes: make(map[string]*Node)}
}

// Add registers a node.
func (nw *Network) Add(n *Node) { nw.nodes[n.Name] = n }

// Node looks a node up by name.
func (nw *Network) Node(name string) *Node { return nw.nodes[name] }

// Deliver moves n bytes from src to dst through every rate server on the
// path (src egress, cross-rack shapers when racks differ, dst ingress),
// then fires arrived after the hop latency. Stages pipeline across
// packets because each stage is its own FIFO server.
func (nw *Network) Deliver(src, dst *Node, n int64, arrived func()) {
	stages := make([]*Server, 0, 4)
	stages = append(stages, src.Egress)
	if src.Rack != dst.Rack {
		if src.CrossOut != nil {
			stages = append(stages, src.CrossOut)
		}
		if dst.CrossIn != nil {
			stages = append(stages, dst.CrossIn)
		}
	}
	stages = append(stages, dst.Ingress)

	var step func(i int)
	step = func(i int) {
		if i == len(stages) {
			if nw.HopLatency > 0 {
				nw.eng.Schedule(nw.HopLatency, arrived)
			} else {
				arrived()
			}
			return
		}
		stages[i].Enqueue(n, func() { step(i + 1) })
	}
	step(0)
}
