GO ?= go

.PHONY: build test vet lint race docs-check bench-hotpath bench-check profile conformance

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own invariants-as-code suite (DESIGN.md §13): packet/buffer
# ownership, namenode lock ranking, sim determinism, obs nil-safety.
# Also runs as a vet tool: go vet -vettool=$(go env GOPATH)/bin/smarth-vet ./...
lint:
	$(GO) run ./cmd/smarth-vet ./...

# -count=1 defeats the test cache so the race detector actually re-runs
# the full suite (a cached "ok" proves nothing about the current build).
race:
	$(GO) test -race -count=1 ./...

# Fail if any package under internal/ or cmd/ lacks a package comment
# (the godoc surface ARCHITECTURE.md builds on).
docs-check:
	$(GO) test -run TestPackageDocs -count=1 .

# Run the hot-path benchmarks and record BENCH_hotpath.json (preserving
# the pre-change baseline entry).
bench-hotpath:
	$(GO) run ./cmd/smarth-hotpath -out BENCH_hotpath.json

# Regression-guard the hot path against the committed BENCH_hotpath.json
# (tight on allocs/op, loose on MB/s; see cmd/smarth-hotpath -check).
# A smaller upload keeps it CI-fast; the committed numbers are 64 MB, so
# only size-independent allocation gates apply at other sizes.
bench-check:
	$(GO) run ./cmd/smarth-hotpath -check

# Capture CPU and allocation profiles of the whole hot-path suite as
# pprof files (CI uploads these as artifacts; inspect with
# `go tool pprof -top profile_cpu.pb.gz`). Results go to a scratch JSON
# so the committed BENCH_hotpath.json is untouched and regressions do
# not fail the profiling job (bench-check is the gate).
profile:
	$(GO) run ./cmd/smarth-hotpath -out profile_bench.json -cpuprofile profile_cpu.pb.gz -memprofile profile_mem.pb.gz

# Differential live/sim conformance: replay the seeded scenarios through
# both substrates and byte-compare the writesched decision logs.
conformance:
	$(GO) test ./internal/conformance/ -count=1 -race -v -run 'TestConformance|TestScenarioLogs'
