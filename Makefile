GO ?= go

.PHONY: build test race bench-hotpath

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the hot-path benchmarks and record BENCH_hotpath.json (preserving
# the pre-change baseline entry).
bench-hotpath:
	$(GO) run ./cmd/smarth-hotpath -out BENCH_hotpath.json
