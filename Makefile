GO ?= go

.PHONY: build test vet race docs-check bench-hotpath conformance

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Fail if any package under internal/ or cmd/ lacks a package comment
# (the godoc surface ARCHITECTURE.md builds on).
docs-check:
	$(GO) test -run TestPackageDocs -count=1 .

# Run the hot-path benchmarks and record BENCH_hotpath.json (preserving
# the pre-change baseline entry).
bench-hotpath:
	$(GO) run ./cmd/smarth-hotpath -out BENCH_hotpath.json

# Differential live/sim conformance: replay the seeded scenarios through
# both substrates and byte-compare the writesched decision logs.
conformance:
	$(GO) test ./internal/conformance/ -count=1 -race -v -run 'TestConformance|TestScenarioLogs'
